"""Property-based tests for the resilience primitives (docs/resilience.md).

The invariants here are the ones the control loops rely on: a retry
budget that can never go negative or exceed capacity, a breaker that
opens only via the consecutive-failure threshold and only walks legal
state-machine edges, and attempt timeouts that never exceed (and
shrink with) the remaining deadline budget.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    VALID_TRANSITIONS,
    CircuitBreaker,
    LoadShedder,
    ResilienceConfig,
    RetryBudget,
    attempt_timeout_ms,
    remaining_budget_ms,
)

pytestmark = pytest.mark.resilience


# -- retry budget -----------------------------------------------------------

budget_op = st.one_of(
    st.tuples(st.just("spend"), st.floats(0.1, 4.0)),
    st.tuples(st.just("refill"), st.none()),
)


@settings(max_examples=200)
@given(
    capacity=st.floats(0.5, 32.0),
    refill=st.floats(0.0, 2.0),
    ops=st.lists(budget_op, max_size=60),
)
def test_retry_budget_bounds(capacity, refill, ops):
    """Tokens stay in [0, capacity]; a refused spend changes nothing."""
    budget = RetryBudget(capacity, refill)
    for kind, cost in ops:
        before = budget.tokens
        if kind == "spend":
            ok = budget.try_spend(cost)
            if ok:
                assert budget.tokens == before - cost
            else:
                assert budget.tokens == before
        else:
            budget.refill()
            # Refill is monotone and capped at capacity.
            assert budget.tokens >= before
            assert budget.tokens <= max(before, capacity)
        assert 0.0 <= budget.tokens <= capacity


@settings(max_examples=100)
@given(capacity=st.floats(0.5, 8.0), refill=st.floats(0.0, 1.0),
       spends=st.integers(0, 40))
def test_retry_budget_exhaustion_counts_refusals(capacity, refill, spends):
    budget = RetryBudget(capacity, refill)
    refused = sum(0 if budget.try_spend() else 1 for _ in range(spends))
    assert budget.exhaustions == refused
    # Every accepted spend took a whole token out of a finite bucket.
    assert spends - refused <= capacity


# -- circuit breaker --------------------------------------------------------

breaker_op = st.one_of(
    st.tuples(st.just("success"), st.floats(0.0, 50.0)),
    st.tuples(st.just("failure"), st.floats(0.0, 50.0)),
    st.tuples(st.just("allow"), st.floats(0.0, 50.0)),
    st.tuples(st.just("wait"), st.floats(100.0, 1_000.0)),
)


@settings(max_examples=200)
@given(
    threshold=st.integers(1, 8),
    seed=st.integers(0, 2**16),
    ops=st.lists(breaker_op, max_size=80),
)
def test_breaker_transitions_always_legal(threshold, seed, ops):
    """Every logged edge is in VALID_TRANSITIONS, and CLOSED→OPEN fires
    only after exactly ``threshold`` consecutive failures."""
    config = ResilienceConfig(breaker_failure_threshold=threshold)
    transitions = []
    breaker = CircuitBreaker(
        "edge", config, random.Random(seed), transitions.append
    )
    now = 0.0
    failures_since_success = 0
    for kind, delta in ops:
        now += delta
        if kind == "success":
            was_closed = breaker.state == CLOSED
            breaker.record_success(now)
            if was_closed:
                failures_since_success = 0
        elif kind == "failure":
            was_closed = breaker.state == CLOSED
            breaker.record_failure(now)
            if was_closed:
                failures_since_success += 1
                if breaker.state == OPEN:
                    # The trip happened at exactly the threshold, never
                    # before and never late.
                    assert failures_since_success == threshold
                    failures_since_success = 0
                else:
                    assert failures_since_success < threshold
        else:  # allow / wait both poll admission
            admitted = breaker.allow(now)
            if breaker.state == OPEN:
                assert not admitted
            if breaker.state == CLOSED:
                assert admitted
            if breaker.state != CLOSED:
                failures_since_success = 0
    for event in transitions:
        assert (event.from_state, event.to_state) in VALID_TRANSITIONS
    assert breaker.opens == sum(
        1 for e in transitions if e.to_state == OPEN
    )


@settings(max_examples=100)
@given(seed=st.integers(0, 2**16), jitter=st.floats(0.0, 1.0))
def test_breaker_open_dwell_within_jitter_band(seed, jitter):
    """The reopen time lands in [open_ms, open_ms * (1 + jitter))."""
    config = ResilienceConfig(
        breaker_failure_threshold=1, breaker_open_ms=500.0,
        breaker_open_jitter=jitter,
    )
    breaker = CircuitBreaker("edge", config, random.Random(seed))
    breaker.record_failure(1_000.0)
    assert breaker.state == OPEN
    dwell = breaker.reopen_at_ms - 1_000.0
    assert 500.0 <= dwell <= 500.0 * (1.0 + jitter)
    # Before the dwell elapses the breaker rejects; at/after it, the
    # next poll flips half-open and admits exactly the probe quota.
    assert not breaker.allow(breaker.reopen_at_ms - 1.0)
    assert breaker.allow(breaker.reopen_at_ms)
    assert breaker.state == HALF_OPEN


# -- deadline budget math ---------------------------------------------------

@settings(max_examples=200)
@given(
    deadline=st.floats(0.0, 10_000.0),
    now=st.floats(0.0, 12_000.0),
    fallback=st.floats(1.0, 60_000.0),
    fraction=st.floats(0.05, 1.0),
    floor=st.floats(1.0, 500.0),
)
def test_attempt_timeout_never_exceeds_budget(deadline, now, fallback,
                                              fraction, floor):
    config = ResilienceConfig(
        attempt_timeout_fraction=fraction, min_attempt_timeout_ms=floor,
    )
    timeout = attempt_timeout_ms(config, deadline, now, fallback)
    remaining = remaining_budget_ms(deadline, now)
    assert timeout >= 0.0
    assert timeout <= fallback
    # Never promise more time than the deadline has left.
    assert timeout <= max(0.0, remaining)
    if remaining <= 0.0:
        assert timeout == 0.0


@settings(max_examples=200)
@given(
    deadline=st.floats(100.0, 10_000.0),
    times=st.lists(st.floats(0.0, 12_000.0), min_size=2, max_size=20),
    fallback=st.floats(1.0, 60_000.0),
)
def test_attempt_timeout_non_increasing_toward_deadline(deadline, times,
                                                        fallback):
    """As sim time advances, per-attempt timeouts only shrink."""
    config = ResilienceConfig()
    timeouts = [
        attempt_timeout_ms(config, deadline, now, fallback)
        for now in sorted(times)
    ]
    for earlier, later in zip(timeouts, timeouts[1:]):
        assert later <= earlier


@settings(max_examples=100)
@given(now=st.floats(0.0, 1e7), fallback=st.floats(1.0, 60_000.0))
def test_no_deadline_means_legacy_fallback(now, fallback):
    config = ResilienceConfig()
    assert attempt_timeout_ms(config, None, now, fallback) == fallback
    assert remaining_budget_ms(None, now) == float("inf")


# -- CoDel shedder ----------------------------------------------------------

@settings(max_examples=100)
@given(
    target=st.floats(5.0, 50.0),
    interval=st.floats(50.0, 500.0),
    delays=st.lists(st.floats(0.0, 200.0), min_size=1, max_size=60),
)
def test_shedder_only_sheds_after_sustained_pressure(target, interval,
                                                     delays):
    """should_shed can return True only once the observed delay has
    stayed at/above target for a full interval; any dip resets it."""
    shedder = LoadShedder(target, interval)
    now = 0.0
    above_since = None
    for delay in delays:
        now += 10.0
        shedder.observe(now, delay)
        if delay < target:
            above_since = None
            assert not shedder.under_pressure
            assert not shedder.should_shed(now)
        else:
            if above_since is None:
                above_since = now
            if shedder.under_pressure:
                assert now - above_since >= interval
