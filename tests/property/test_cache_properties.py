"""Property-based tests: the trie cache behaves like a path→INode map."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.namespace import INode, MetadataCache
from repro.namespace.paths import is_descendant, normalize

# Small component alphabet so operations collide often.
component = st.sampled_from(["a", "b", "c", "d"])
path_strategy = st.builds(
    lambda parts: "/" + "/".join(parts),
    st.lists(component, min_size=1, max_size=4),
)

operation = st.one_of(
    st.tuples(st.just("put"), path_strategy, st.integers(2, 10_000)),
    st.tuples(st.just("invalidate"), path_strategy, st.none()),
    st.tuples(st.just("invalidate_prefix"), path_strategy, st.none()),
)


def make_inode(inode_id: int) -> INode:
    return INode(id=inode_id, parent_id=1, name=f"n{inode_id}", is_dir=False)


@settings(max_examples=200)
@given(st.lists(operation, max_size=40))
def test_cache_matches_dict_model(ops):
    """With unbounded capacity, the trie equals a plain dict model."""
    cache = MetadataCache(capacity=10_000)
    model = {}
    for kind, path, value in ops:
        path = normalize(path)
        if kind == "put":
            inode = make_inode(value)
            cache.put(path, inode)
            model[path] = inode
        elif kind == "invalidate":
            removed = cache.invalidate(path)
            assert removed == (1 if path in model else 0)
            model.pop(path, None)
        else:
            removed = cache.invalidate_prefix(path)
            victims = [p for p in model if is_descendant(p, path)]
            assert removed == len(victims)
            for victim in victims:
                del model[victim]
    assert len(cache) == len(model)
    for path, inode in model.items():
        assert cache.get(path) == inode
    assert sorted(cache.paths()) == sorted(model)


@settings(max_examples=100)
@given(st.lists(st.tuples(path_strategy, st.integers(2, 1000)),
                min_size=1, max_size=60),
       st.integers(1, 8))
def test_cache_never_exceeds_capacity(puts, capacity):
    cache = MetadataCache(capacity=capacity)
    for path, value in puts:
        cache.put(path, make_inode(value))
        assert len(cache) <= capacity


@settings(max_examples=100)
@given(st.lists(st.tuples(path_strategy, st.integers(2, 1000)),
                min_size=1, max_size=30))
def test_last_put_wins(puts):
    cache = MetadataCache(capacity=10_000)
    final = {}
    for path, value in puts:
        inode = make_inode(value)
        cache.put(normalize(path), inode)
        final[normalize(path)] = inode
    for path, inode in final.items():
        assert cache.get(path) == inode


@settings(max_examples=100)
@given(path_strategy, st.lists(st.tuples(path_strategy, st.integers(2, 999)),
                               max_size=20))
def test_prefix_invalidation_is_complete(prefix, puts):
    cache = MetadataCache(capacity=10_000)
    for path, value in puts:
        cache.put(path, make_inode(value))
    cache.invalidate_prefix(prefix)
    for path in cache.paths():
        assert not is_descendant(path, prefix)
