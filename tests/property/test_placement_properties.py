"""Property-based tests for rendezvous + rack-aware block placement."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import (
    BlockManager,
    BlockPlacementConfig,
    rack_aware_place,
    rendezvous_rank,
)

node_ids = st.lists(
    st.integers(0, 40).map(lambda i: f"dn{i}"),
    min_size=1, max_size=12, unique=True,
)
block_ids = st.integers(1, 10_000)
replication = st.integers(1, 4)


@settings(max_examples=200)
@given(block_ids, node_ids, replication)
def test_placement_never_duplicates(block_id, datanodes, rf):
    manager = BlockManager(BlockPlacementConfig(replication=rf))
    placed = manager.place(block_id, datanodes)
    assert len(placed) == len(set(placed))
    assert len(placed) == min(rf, len(datanodes))
    assert set(placed) <= set(datanodes)


@settings(max_examples=200)
@given(block_ids, node_ids, replication)
def test_placement_stable_under_node_growth(block_id, datanodes, rf):
    """Adding one DataNode moves at most the minimal replica set.

    Rendezvous hashing's minimal-disruption property: the new node
    either takes one slot (displacing exactly one incumbent) or
    changes nothing — the surviving incumbents keep their copies, so
    a cluster expansion re-replicates at most one replica per block.
    """
    manager = BlockManager(BlockPlacementConfig(replication=rf))
    before = set(manager.place(block_id, datanodes))
    new_node = f"dn{len(datanodes) + 100}"
    after = set(manager.place(block_id, datanodes + [new_node]))
    # Nothing moves between incumbents: every change involves new_node.
    assert before - after <= before  # sanity
    assert after - before <= {new_node}
    assert len(before - after) <= 1
    if new_node not in after:
        assert after == before


@settings(max_examples=200)
@given(block_ids, node_ids, st.integers(2, 4), st.integers(2, 4))
def test_rack_spread_with_two_or_more_racks(block_id, datanodes, rf, nracks):
    """With ≥2 live racks, replicas span min(rf, racks) distinct racks."""
    racks = {dn: f"rack{i % nracks}" for i, dn in enumerate(datanodes)}
    live_racks = set(racks.values())
    placed = rack_aware_place(block_id, racks, rf)
    assert len(placed) == len(set(placed))
    assert len(placed) == min(rf, len(datanodes))
    spanned = {racks[dn] for dn in placed}
    assert len(spanned) == min(rf, len(live_racks), len(placed))


@settings(max_examples=200)
@given(block_ids, node_ids, st.integers(2, 4), st.integers(2, 4))
def test_rack_aware_growth_is_minimally_disruptive(
    block_id, datanodes, rf, nracks
):
    """The rack constraint preserves minimal disruption on growth."""
    racks = {dn: f"rack{i % nracks}" for i, dn in enumerate(datanodes)}
    before = set(rack_aware_place(block_id, racks, rf))
    new_node = f"dn{len(datanodes) + 100}"
    grown = dict(racks)
    grown[new_node] = f"rack{len(datanodes) % nracks}"
    after = set(rack_aware_place(block_id, grown, rf))
    assert after - before <= {new_node}
    assert len(before - after) <= 1


@settings(max_examples=100)
@given(block_ids, node_ids)
def test_rendezvous_rank_is_a_permutation(block_id, datanodes):
    ranked = rendezvous_rank(block_id, datanodes)
    assert sorted(ranked) == sorted(datanodes)
