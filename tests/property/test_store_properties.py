"""Property-based tests for transactional store invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metastore import LockMode, NdbConfig, NdbStore
from repro.metastore.locks import LockManager
from repro.sim import Environment


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(1, 20), st.booleans()),
        min_size=1, max_size=25,
    )
)
def test_lock_manager_mutual_exclusion(program):
    """Random concurrent lock/hold/release programs never co-hold an
    exclusive lock with any other lock on the same key."""
    env = Environment()
    locks = LockManager(env, default_timeout_ms=1e9)
    violations = []

    def worker(owner, key, hold_ms, exclusive):
        mode = LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
        yield from locks.acquire(owner, key, mode)
        holders = locks.holders(key)
        exclusive_holders = [
            o for o, m in holders.items() if m is LockMode.EXCLUSIVE
        ]
        if len(exclusive_holders) > 1:
            violations.append(("two exclusive", key))
        if exclusive_holders and len(holders) > 1:
            violations.append(("exclusive with others", key))
        yield env.timeout(hold_ms)
        locks.release(owner, key)

    for index, (key, hold, exclusive) in enumerate(program):
        env.process(worker(f"w{index}", key, hold, exclusive))
    env.run()
    assert violations == []
    assert locks._locks == {}  # everything released and cleaned up


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 12), st.integers(1, 4))
def test_concurrent_increments_are_serializable(writers, shards):
    """Read-modify-write increments under 2PL never lose updates."""
    env = Environment()
    store = NdbStore(env, NdbConfig(
        shards=shards, workers_per_shard=2,
        read_service_ms=0.5, write_service_ms=0.5, commit_service_ms=0.2,
        rtt_ms=0.0, lock_timeout_ms=1e9,
    ))
    store.load_bulk({("counter",): 0})

    def increment(txn):
        # Exclusive up-front: the canonical 2PL read-modify-write.
        yield from txn.lock(("counter",), exclusive=True)
        value = yield from txn.read(("counter",))
        yield from txn.write(("counter",), value + 1)

    def worker(env, delay):
        yield env.timeout(delay)
        yield from store.run_transaction(increment)

    for index in range(writers):
        env.process(worker(env, index % 3))
    env.run()
    assert store.peek(("counter",)) == writers


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 100)),
        min_size=1, max_size=20,
    )
)
def test_committed_writes_always_visible(writes):
    """Sequential transactions: peek equals the last committed write."""
    env = Environment()
    store = NdbStore(env, NdbConfig(rtt_ms=0.0))
    expected = {}

    def run_writes(env):
        for key_index, value in writes:
            key = ("row", key_index)

            def body(txn, key=key, value=value):
                yield from txn.write(key, value)

            yield from store.run_transaction(body)
            expected[key] = value

    done = env.process(run_writes(env))
    env.run(until=done)
    for key, value in expected.items():
        assert store.peek(key) == value
