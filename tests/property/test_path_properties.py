"""Property-based tests for path utilities and partitioning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import stable_hash
from repro.core.partitioning import NamespacePartitioner
from repro.namespace import paths

component = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
    min_size=1, max_size=6,
)
abs_path = st.builds(
    lambda parts: "/" + "/".join(parts),
    st.lists(component, min_size=1, max_size=5),
)


@given(abs_path)
def test_normalize_idempotent(path):
    once = paths.normalize(path)
    assert paths.normalize(once) == once


@given(abs_path)
def test_split_join_roundtrip(path):
    normalized = paths.normalize(path)
    parent, name = paths.split(normalized)
    assert paths.join(parent, name) == normalized


@given(abs_path)
def test_components_rebuild(path):
    normalized = paths.normalize(path)
    parts = paths.components(normalized)
    assert "/" + "/".join(parts) == normalized


@given(abs_path, component)
def test_child_is_descendant(path, name):
    child = paths.join(paths.normalize(path), name)
    assert paths.is_descendant(child, path)
    assert not paths.is_descendant(path, child)


@given(abs_path, abs_path)
def test_descendant_antisymmetry(a, b):
    a, b = paths.normalize(a), paths.normalize(b)
    if a != b and paths.is_descendant(a, b):
        assert not paths.is_descendant(b, a)


@given(st.integers(1, 64), abs_path)
def test_partitioner_index_in_range(n, path):
    partitioner = NamespacePartitioner(n)
    assert 0 <= partitioner.index_for(path) < n


@given(st.integers(1, 64), abs_path, component, component)
def test_siblings_colocated(n, parent, name_a, name_b):
    partitioner = NamespacePartitioner(n)
    a = paths.join(paths.normalize(parent), name_a)
    b = paths.join(paths.normalize(parent), name_b)
    assert partitioner.deployment_for(a) == partitioner.deployment_for(b)


@given(st.text(min_size=0, max_size=30))
def test_stable_hash_is_deterministic(value):
    assert stable_hash(value) == stable_hash(value)
    assert 0 <= stable_hash(value) < 2 ** 64
