"""Property-based tests: Jain's fairness index behaves like the paper
formula ``(Σx)² / (n·Σx²)`` must — bounded, permutation-invariant,
scale-invariant, and extremal exactly at equal shares / single hogs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tenants import jain_index

pytestmark = pytest.mark.tenant

share = st.floats(min_value=0.0, max_value=1e9,
                  allow_nan=False, allow_infinity=False)
shares = st.lists(share, min_size=1, max_size=32)
positive_shares = st.lists(
    st.floats(min_value=1e-6, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=32,
)


@settings(max_examples=300)
@given(shares)
def test_result_bounded_in_unit_interval(values):
    index = jain_index(values)
    # Lower bound 1/n is achieved by a single hog; 1.0 by equality.
    assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9


@settings(max_examples=200)
@given(st.floats(min_value=1e-6, max_value=1e9, allow_nan=False),
       st.integers(min_value=1, max_value=32))
def test_equal_shares_score_one(value, count):
    assert jain_index([value] * count) == pytest.approx(1.0)


@settings(max_examples=200)
@given(shares, st.randoms(use_true_random=False))
def test_permutation_invariant(values, rng):
    shuffled = list(values)
    rng.shuffle(shuffled)
    assert jain_index(shuffled) == pytest.approx(jain_index(values))


@settings(max_examples=200)
@given(positive_shares,
       st.floats(min_value=1e-3, max_value=1e3, allow_nan=False))
def test_scale_invariant(values, factor):
    scaled = [v * factor for v in values]
    assert jain_index(scaled) == pytest.approx(
        jain_index(values), rel=1e-6
    )


@settings(max_examples=100)
@given(st.integers(min_value=2, max_value=32),
       st.floats(min_value=1e-3, max_value=1e9, allow_nan=False))
def test_single_hog_scores_one_over_n(n, amount):
    values = [0.0] * n
    values[random.Random(n).randrange(n)] = amount
    assert jain_index(values) == pytest.approx(1.0 / n)


@settings(max_examples=200)
@given(positive_shares, st.integers(min_value=0, max_value=31),
       st.floats(min_value=1.1, max_value=1e3, allow_nan=False))
def test_boosting_one_tenant_never_improves_perfect_fairness(
    values, index, factor
):
    """Starting from equal shares, inflating any single tenant
    strictly lowers the index."""
    equal = [values[0]] * len(values)
    boosted = list(equal)
    boosted[index % len(boosted)] *= factor
    if len(boosted) > 1:
        assert jain_index(boosted) < jain_index(equal)


@given(st.lists(share, min_size=1, max_size=8))
def test_appending_a_zero_share_tenant_lowers_or_keeps(values):
    """An idle tenant can only hurt fairness (or leave the degenerate
    all-zero case vacuously fair)."""
    with_idle = values + [0.0]
    assert jain_index(with_idle) <= jain_index(values) + 1e-9


def test_negative_shares_rejected():
    with pytest.raises(ValueError):
        jain_index([3.0, -1.0])
