"""Property-based test: NamespaceOps equals a path-set model.

Sequential random create/mkdir/delete/mv programs against the real
transactional store must leave exactly the namespace a plain
set-of-paths model predicts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import FsError
from repro.core.operations import NamespaceOps
from repro.metastore import NdbConfig, NdbStore
from repro.metastore.errors import TransactionAborted
from repro.namespace.paths import is_descendant, parent_of
from repro.sim import Environment

NAMES = ["x", "y"]
DIRS = ["/", "/a", "/a/b"]

operation = st.one_of(
    st.tuples(st.just("create"), st.sampled_from(DIRS), st.sampled_from(NAMES)),
    st.tuples(st.just("mkdirs"), st.sampled_from(DIRS), st.sampled_from(NAMES)),
    st.tuples(st.just("delete"), st.sampled_from(DIRS), st.sampled_from(NAMES)),
    st.tuples(st.just("mv"), st.sampled_from(DIRS), st.sampled_from(NAMES)),
)


class Model:
    """Plain model: path -> is_dir."""

    def __init__(self):
        self.entries = {"/": True, "/a": True, "/a/b": True}

    def exists(self, path):
        return path in self.entries

    def create(self, path):
        parent = parent_of(path)
        if not self.entries.get(parent) or path in self.entries:
            return False
        self.entries[path] = False
        return True

    def mkdirs(self, path):
        if path in self.entries:
            return self.entries[path]  # ok iff it's a directory
        parent = parent_of(path)
        if parent not in self.entries:
            self.mkdirs(parent)
        if not self.entries.get(parent):
            return False
        self.entries[path] = True
        return True

    def delete(self, path):
        # Non-recursive: only files or empty dirs.
        if path not in self.entries:
            return False
        if self.entries[path] and any(
            p != path and is_descendant(p, path) for p in self.entries
        ):
            return False
        del self.entries[path]
        return True

    def mv(self, src, dst):
        if src not in self.entries or dst in self.entries:
            return False
        parent = parent_of(dst)
        if not self.entries.get(parent):
            return False
        moved = {
            p: d for p, d in self.entries.items() if is_descendant(p, src)
        }
        for p in moved:
            del self.entries[p]
        for p, d in moved.items():
            self.entries[dst + p[len(src):]] = d
        return True


@settings(max_examples=50, deadline=None)
@given(st.lists(operation, min_size=1, max_size=20))
def test_namespace_ops_match_model(program):
    env = Environment()
    store = NdbStore(env, NdbConfig(rtt_ms=0.0))
    ops = NamespaceOps(store)
    ops.format()
    ops.install_paths(["/a/b"], [])
    model = Model()
    mismatches = []

    def run_op(txn_body):
        return store.run_transaction(txn_body)

    def scenario(env):
        serial = 0
        for kind, directory, name in program:
            serial += 1
            path = f"{directory}/{name}".replace("//", "/")
            try:
                if kind == "create":
                    yield from run_op(lambda txn: ops.create_file(txn, path))
                    ok = True
                elif kind == "mkdirs":
                    yield from run_op(lambda txn: ops.mkdirs(txn, path))
                    ok = True
                elif kind == "delete":
                    yield from run_op(lambda txn: ops.delete_single(txn, path))
                    ok = True
                else:
                    dst = f"{directory}/mv{serial}".replace("//", "/")
                    yield from run_op(lambda txn: ops.mv_single(txn, path, dst))
                    ok = True
            except (FsError, TransactionAborted):
                ok = False

            if kind == "create":
                expected = model.create(path)
            elif kind == "mkdirs":
                expected = model.mkdirs(path)
            elif kind == "delete":
                expected = model.delete(path)
            else:
                expected = model.mv(path, dst)
            if ok != expected:
                mismatches.append((kind, path, ok, expected))

    done = env.process(scenario(env))
    env.run(until=done)
    assert mismatches == []
    # The store's committed rows agree with the model's survivors.
    for path, is_dir in model.entries.items():
        if path == "/":
            continue
        box = {}

        def check(env, path=path):
            box["r"] = yield from store.run_transaction(
                lambda txn: ops.resolve(txn, path)
            )

        done = env.process(check(env))
        env.run(until=done)
        assert box["r"][path].is_dir == is_dir
