"""Property-based test: the SSTable store equals a dict model.

Random put/delete/get programs must observe exactly what a plain
dict would show, regardless of how flushes and compactions have
arranged the data across the memtable and runs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metastore import SSTableConfig, SSTableStore
from repro.sim import Environment

operation = st.one_of(
    st.tuples(st.just("put"), st.integers(0, 9), st.integers(0, 99)),
    st.tuples(st.just("delete"), st.integers(0, 9), st.none()),
    st.tuples(st.just("get"), st.integers(0, 9), st.none()),
)


@settings(max_examples=80, deadline=None)
@given(st.lists(operation, max_size=40), st.integers(2, 6), st.integers(1, 3))
def test_sstable_matches_dict_model(program, flush_threshold, max_runs):
    env = Environment()
    store = SSTableStore(env, SSTableConfig(
        io_threads=2,
        write_service_ms=0.1,
        read_service_ms=0.1,
        per_run_penalty_ms=0.05,
        flush_threshold=flush_threshold,
        max_runs=max_runs,
        flush_ms_per_1k_entries=1.0,
        compact_ms_per_1k_entries=1.0,
    ))
    model = {}
    mismatches = []

    def scenario(env):
        for kind, key, value in program:
            if kind == "put":
                yield from store.put(("k", key), value)
                model[("k", key)] = value
            elif kind == "delete":
                yield from store.delete(("k", key))
                model.pop(("k", key), None)
            else:
                got = yield from store.get(("k", key))
                expected = model.get(("k", key))
                if got != expected:
                    mismatches.append((key, got, expected))
        # Let background flush/compaction settle, then re-verify all.
        yield env.timeout(100)
        for key in range(10):
            got = yield from store.get(("k", key))
            expected = model.get(("k", key))
            if got != expected:
                mismatches.append(("final", key, got, expected))

    done = env.process(scenario(env))
    env.run(until=done)
    assert mismatches == []


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 99)),
                min_size=1, max_size=60))
def test_scan_prefix_matches_model(puts):
    env = Environment()
    store = SSTableStore(env, SSTableConfig(flush_threshold=5, max_runs=2))
    model = {}
    result = {}

    def scenario(env):
        for key, value in puts:
            yield from store.put(("d", key % 3, key), value)
            model[("d", key % 3, key)] = value
        yield env.timeout(200)
        result.update((yield from store.scan_prefix(("d", 0))))

    done = env.process(scenario(env))
    env.run(until=done)
    expected = {k: v for k, v in model.items() if k[:2] == ("d", 0)}
    assert result == expected
