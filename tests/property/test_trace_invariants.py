"""Property test: random microbenchmark workloads under NameNode
chaos never violate the traced coherence or lock-discipline
invariants.

Each example builds a small λFS fleet with tracing + the default
checker battery enabled, runs one randomly chosen operation mix via
:class:`~repro.workloads.micro.MicroBenchmark` while a
:class:`~repro.faas.chaos.NameNodeKiller` terminates a warm NameNode
on a random cadence, and asserts the run was invariant-clean."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import build_lambdafs
from repro.core.messages import OpType
from repro.faas.chaos import NameNodeKiller
from repro.namespace.treegen import TreeSpec, generate_tree
from repro.sim import Environment
from repro.workloads import MicroBenchmark

MICRO_OPS = (
    OpType.READ_FILE, OpType.STAT, OpType.LS, OpType.CREATE_FILE, OpType.MKDIRS
)


@pytest.mark.slow
@settings(max_examples=6, deadline=None)
@given(
    op=st.sampled_from(MICRO_OPS),
    seed=st.integers(min_value=0, max_value=2**16),
    kill_interval_ms=st.sampled_from([40.0, 75.0, 150.0]),
)
def test_chaos_workload_is_invariant_clean(op, seed, kill_interval_ms):
    env = Environment()
    tree = generate_tree(TreeSpec(depth=2, dirs_per_dir=3, files_per_dir=4))
    handle = build_lambdafs(
        env, tree, vcpus=48.0, deployments=4, seed=seed, trace=True,
        faas_overrides={
            "vcpus_per_instance": 4.0,
            "cold_start_min_ms": 10.0,
            "cold_start_max_ms": 15.0,
            "app_init_ms": 2.0,
        },
    )
    clients = handle.make_clients(6)
    bench = MicroBenchmark(env, tree, seed=seed)
    killer = NameNodeKiller(env, handle.system.platform, kill_interval_ms)
    box = {}

    def main(env):
        killer.start()
        box["result"] = yield from bench.run(clients, op, ops_per_client=8)
        killer.stop()

    done = env.process(main(env))
    env.run(until=done)

    tracer = handle.tracer
    assert tracer.violations() == [], "\n".join(
        str(v) for v in tracer.violations()
    )
    # The run actually exercised the protocol and (usually) the chaos.
    assert box["result"].total_ops == 48
    checkers = {type(c).__name__: c for c in tracer.checkers}
    assert checkers["LockDisciplineChecker"].acquires > 0
    if op in (OpType.CREATE_FILE, OpType.MKDIRS):
        assert checkers["CoherenceChecker"].commits_checked > 0
