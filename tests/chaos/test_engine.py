"""ChaosEngine: scheduling, injection queries, determinism."""

import itertools

import pytest

from repro.chaos import ChaosEngine, FaultSpec, Scenario, install_chaos
from repro.sim import Environment

pytestmark = pytest.mark.chaos


def run_until(env, t):
    env.run(until=t)


def test_schedule_activates_and_deactivates_on_the_sim_clock():
    env = Environment()
    engine = ChaosEngine(env)
    engine.start(Scenario("s", faults=(
        FaultSpec("tcp_drop", at_ms=10.0, duration_ms=20.0, params={"p": 1.0}),
    )))
    run_until(env, 5.0)
    assert engine.active_faults("tcp_drop") == []
    assert not engine.tcp_should_drop("d0")
    run_until(env, 15.0)
    assert len(engine.active_faults("tcp_drop")) == 1
    assert engine.tcp_should_drop("d0")
    run_until(env, 35.0)
    assert engine.active_faults() == []
    assert not engine.tcp_should_drop("d0")
    actions = [(e.kind, e.action) for e in engine.log
               if e.action != "inject"]
    assert actions == [("tcp_drop", "activate"), ("tcp_drop", "deactivate")]


def test_scenario_times_are_relative_to_engine_start():
    env = Environment()
    engine = ChaosEngine(env)
    run_until(env, 50.0)
    engine.start(Scenario("s", faults=(
        FaultSpec("tcp_drop", at_ms=10.0, duration_ms=5.0, params={"p": 1.0}),
    )))
    assert engine.epoch == 50.0
    assert engine.first_fault_at_ms == 60.0
    assert engine.faults_clear_at_ms == 65.0
    run_until(env, 62.0)
    assert engine.tcp_should_drop(None)


def test_start_twice_raises_and_stop_deactivates():
    env = Environment()
    engine = ChaosEngine(env)
    engine.start(Scenario("s", faults=(
        FaultSpec("tcp_drop", at_ms=0.0, duration_ms=100.0,
                  params={"p": 1.0}),
    )))
    run_until(env, 1.0)
    with pytest.raises(RuntimeError):
        engine.start(Scenario("s2", faults=()))
    assert engine.active_faults("tcp_drop")
    engine.stop()
    assert engine.active_faults() == []
    assert [e.action for e in engine.log] == ["activate", "deactivate"]


def test_deployment_scoping_of_fabric_faults():
    env = Environment()
    engine = ChaosEngine(env)
    engine.start(Scenario("s", faults=(
        FaultSpec("tcp_drop", at_ms=0.0, duration_ms=10.0,
                  params={"p": 1.0, "deployment": "d1"}),
    )))
    run_until(env, 1.0)
    assert engine.tcp_should_drop("d1")
    assert not engine.tcp_should_drop("d2")


def test_tcp_delay_is_deterministic_without_jitter():
    env = Environment()
    engine = ChaosEngine(env)
    engine.start(Scenario("s", faults=(
        FaultSpec("tcp_delay", at_ms=0.0, duration_ms=10.0,
                  params={"extra_ms": 7.5}),
    )))
    run_until(env, 1.0)
    assert engine.tcp_extra_delay_ms("any") == 7.5
    assert engine.tcp_extra_delay_ms("any") == 7.5


def test_store_hold_and_factor():
    env = Environment()
    engine = ChaosEngine(env)
    engine.start(Scenario("s", faults=(
        FaultSpec("shard_outage", at_ms=0.0, duration_ms=30.0,
                  params={"shard": 0}),
        FaultSpec("store_slowdown", at_ms=0.0, duration_ms=30.0,
                  params={"factor": 3.0}),
    )))
    run_until(env, 10.0)
    assert engine.store_hold_ms(0) == pytest.approx(20.0)
    assert engine.store_hold_ms(1) == 0.0  # other shard unaffected
    assert engine.store_factor(0) == 3.0
    assert engine.store_factor(1) == 3.0  # no shard filter -> all
    run_until(env, 31.0)
    assert engine.store_hold_ms(0) == 0.0
    assert engine.store_factor(0) == 1.0


def test_gateway_effects_and_ack_drop():
    env = Environment()
    engine = ChaosEngine(env)
    engine.start(Scenario("s", faults=(
        FaultSpec("http_brownout", at_ms=0.0, duration_ms=10.0,
                  params={"extra_ms": 5.0, "fail_p": 1.0}),
        FaultSpec("ack_loss", at_ms=0.0, duration_ms=10.0,
                  params={"p": 1.0, "deployment": "d0"}),
    )))
    run_until(env, 1.0)
    extra, shed = engine.gateway_effects()
    assert extra == 5.0 and shed
    assert engine.ack_should_drop("d0", "nn1")
    assert not engine.ack_should_drop("d9", "nn1")
    injected = {(e.kind, e.action) for e in engine.log}
    assert ("http_brownout", "inject") in injected
    assert ("ack_loss", "inject") in injected


def _drive_queries(seed):
    """A fixed query schedule against a drop fault; returns the log."""
    env = Environment()
    engine = ChaosEngine(env, seed=seed)
    engine.start(Scenario("s", faults=(
        FaultSpec("tcp_drop", at_ms=0.0, duration_ms=200.0,
                  params={"p": 0.5}),
    )))

    def querier(env):
        for step in range(100):
            yield env.timeout(1.0)
            engine.tcp_should_drop(f"d{step % 4}")

    env.process(querier(env))
    env.run(until=150.0)
    return [str(event) for event in engine.log], engine.log_hash()


def test_same_seed_same_fault_log_hash():
    log_a, hash_a = _drive_queries(seed=7)
    log_b, hash_b = _drive_queries(seed=7)
    log_c, hash_c = _drive_queries(seed=8)
    assert log_a == log_b
    assert hash_a == hash_b
    assert hash_a != hash_c  # different seed, different coin flips


# -- chaos-disabled determinism regression ------------------------------

def _reset_counters(monkeypatch):
    from repro.core import client as client_mod
    from repro.core import messages
    from repro.faas import platform as platform_mod
    from repro.rpc import connections

    monkeypatch.setattr(client_mod.LambdaFSClient, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.TcpConnection, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.TcpServer, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.ClientVM, "_ids", itertools.count(1))
    monkeypatch.setattr(platform_mod.FunctionInstance, "_ids",
                        itertools.count(1))
    monkeypatch.setattr(messages, "_request_ids", itertools.count(1))


def _traced_workload(monkeypatch, attach_engine):
    from dataclasses import replace

    from repro.core import LambdaFS, LambdaFSConfig
    from repro.core.client import ClientConfig
    from repro.faas import FaaSConfig
    from repro.trace import install_tracer

    _reset_counters(monkeypatch)
    env = Environment()
    tracer = install_tracer(env)
    if attach_engine:
        install_chaos(env, seed=3)  # attached, never started
    fs = LambdaFS(env, LambdaFSConfig(
        num_deployments=2,
        faas=FaaSConfig(cluster_vcpus=64.0, vcpus_per_instance=4.0),
        client=replace(ClientConfig(), replacement_probability=0.1),
    ))
    fs.format()
    fs.start()
    client = fs.new_client()

    def workload(env):
        yield from fs.prewarm(1)
        yield from client.mkdirs("/chaos/dir")
        yield from client.create_file("/chaos/dir/f")
        for _ in range(10):
            yield from client.stat("/chaos/dir/f")

    done = env.process(workload(env))
    env.run(until=done)
    return tracer.event_hash()


def test_attached_idle_engine_leaves_run_byte_identical(monkeypatch):
    """The chaos-off determinism regression: env.chaos set but no
    scenario running must not perturb a single event."""
    without = _traced_workload(monkeypatch, attach_engine=False)
    with_idle = _traced_workload(monkeypatch, attach_engine=True)
    assert without == with_idle
