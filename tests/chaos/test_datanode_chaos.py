"""End-to-end data-plane chaos: kills, recovery, and determinism.

The full stack — λFS metadata service + DataNode fleet + chaos engine
+ verifier — run through the ``datanode-kill`` catalog scenarios.
Same-seed runs must reproduce the event hash, the fault-log hash, and
the re-replication completion times exactly; the repaired run PASSes
the verifier's replication gate and the dead-repair-daemon variant is
the expected FAIL.
"""

import pytest

from repro.chaos import ChaosRunConfig, RecoverySLO, run_scenario
from repro.chaos.scenarios import DATANODE_MATRIX, builtin_scenarios

pytestmark = [pytest.mark.chaos, pytest.mark.datanode, pytest.mark.slow]

SMALL = ChaosRunConfig(
    clients=6,
    deployments=2,
    vcpus=128.0,
    think_ms=20.0,
    drain_ms=2_500.0,
    slo=RecoverySLO(window_ms=8_000.0),
)


def test_datanode_kill_passes_with_rf_restored(reset_sim_counters):
    result = run_scenario(builtin_scenarios()["datanode-kill"], SMALL)
    assert result.passed, result.report.render()
    fleet = result.fleet
    assert fleet is not None
    # The scenario kills exactly 2 of the 9-node fleet.
    assert len(fleet.tracker.dead()) == 2
    assert sum(1 for dn in fleet.nodes if not dn.alive) == 2
    # Re-replication actually ran and the verifier saw it.
    assert fleet.scanner.records
    assert result.report.replication_recovery_ms is not None
    assert not fleet.scanner.lost
    assert any(
        check.startswith("PASS replication") for check in result.report.checks
    )


def test_datanode_kill_norepair_is_expected_fail(reset_sim_counters):
    result = run_scenario(builtin_scenarios()["datanode-kill-norepair"], SMALL)
    assert not result.passed
    assert any("under-replicated" in f or "lost" in f
               for f in result.report.failures)
    # The broken path is the repair daemon, nothing else.
    assert not result.report.hung_ops
    assert not result.fleet.scanner.records


def test_disk_slow_passes_without_deficits(reset_sim_counters):
    result = run_scenario(builtin_scenarios()["disk-slow"], SMALL)
    assert result.passed, result.report.render()
    assert result.fleet is not None
    assert not result.fleet.tracker.dead()


def test_same_seed_datanode_kill_reproduces_everything(reset_sim_counters):
    """Event hash, fault-log hash, and the full re-replication
    timeline are functions of the seed alone."""
    scenario = builtin_scenarios()["datanode-kill"]

    def run_once():
        reset_sim_counters()
        result = run_scenario(scenario, SMALL)
        repairs = tuple(
            (r.block_id, r.detected_ms, r.restored_ms, r.source, r.target)
            for r in result.fleet.scanner.records
        )
        return (result.event_hash, result.log_hash, result.ops_ok,
                result.report.replication_recovery_ms, repairs)

    first = run_once()
    second = run_once()
    assert first == second
    assert first[4]  # repairs actually happened


def test_datanode_matrix_names_resolve():
    scenarios = builtin_scenarios()
    for name in DATANODE_MATRIX:
        assert name in scenarios
