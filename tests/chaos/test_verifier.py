"""ChaosVerifier gates in isolation: invariants, liveness, SLOs."""

import pytest

from repro.chaos import ChaosVerifier, RecoverySLO
from repro.telemetry.sampler import TimeSeries

pytestmark = pytest.mark.chaos


class FakeSpan:
    def __init__(self, kind, actor, start_ms=0.0, **attrs):
        self.kind = kind
        self.actor = actor
        self.start_ms = start_ms
        self.attrs = attrs


class FakeTracer:
    def __init__(self, violations=(), open_spans=()):
        self._violations = list(violations)
        self._open = list(open_spans)

    def violations(self):
        return self._violations

    def open_spans(self):
        return self._open


class FakeEngine:
    def __init__(self, epoch=0.0, first_fault=None, clear=None):
        self.epoch = epoch
        self.first_fault_at_ms = first_fault
        self.faults_clear_at_ms = clear


def _series(points_by_key):
    """Build a TimeSeries from {key: [(t, cumulative value), ...]}."""
    times = sorted({t for pts in points_by_key.values() for t, _ in pts})
    ts = TimeSeries()
    for t in times:
        values = {}
        for key, pts in points_by_key.items():
            values[key] = dict(pts).get(t, 0.0)
        ts.append(t, values)
    return ts


def _latency_series(intervals):
    """Cumulative count/sum samples giving per-interval mean latency.

    ``intervals`` is [(t_ms, ops_in_interval, mean_latency_ms)].
    """
    count = sum_ = 0.0
    counts, sums = [], []
    for t, n, mean in intervals:
        count += n
        sum_ += n * mean
        counts.append((t, count))
        sums.append((t, sum_))
    return {"op_latency_ms_count": counts, "op_latency_ms_sum": sums}


def test_everything_missing_skips_all_gates_and_passes():
    report = ChaosVerifier().verify()
    assert report.passed
    assert all(line.startswith("skip") for line in report.checks)


def test_invariant_violations_fail():
    tracer = FakeTracer(violations=["stale read on /a"])
    report = ChaosVerifier(tracer=tracer).verify()
    assert not report.passed
    assert report.violations == ["stale read on /a"]


def test_hung_client_op_fails_liveness():
    tracer = FakeTracer(open_spans=[
        FakeSpan("client.op", "client3", start_ms=1234.5,
                 op="set permission", path="/a/b"),
        FakeSpan("coord.member", "nn7"),  # non-client spans don't count
    ])
    report = ChaosVerifier(tracer=tracer).verify()
    assert not report.passed
    assert len(report.hung_ops) == 1
    assert "client3" in report.hung_ops[0]
    assert "set permission" in report.hung_ops[0]


def test_clean_tracer_passes_both_tracer_gates():
    report = ChaosVerifier(tracer=FakeTracer()).verify()
    assert report.passed
    assert any("invariants" in line and line.startswith("PASS")
               for line in report.checks)
    assert any("liveness" in line and line.startswith("PASS")
               for line in report.checks)


def test_latency_slo_recovers_within_window():
    # Baseline 2ms (t=250..1000), fault window 1000-3000 at 20ms,
    # recovery interval at 3250 back to 3ms.
    ts = _series(_latency_series([
        (250, 10, 2.0), (500, 10, 2.0), (750, 10, 2.0),
        (1500, 10, 20.0), (2500, 10, 20.0),
        (3250, 10, 3.0), (3500, 10, 2.5),
    ]))
    engine = FakeEngine(epoch=0.0, first_fault=1000.0, clear=3000.0)
    report = ChaosVerifier(
        timeseries=ts, engine=engine,
        slo=RecoverySLO(window_ms=2000.0, latency_factor=3.0),
    ).verify()
    assert report.passed
    assert report.baseline_latency_ms == pytest.approx(2.0)
    assert report.recovered_latency_ms == pytest.approx(3.0)
    assert report.recovery_time_ms == pytest.approx(250.0)


def test_latency_slo_fails_when_latency_stays_high():
    ts = _series(_latency_series([
        (250, 10, 2.0), (500, 10, 2.0),
        (1500, 10, 20.0),
        (3250, 10, 20.0), (4500, 10, 20.0),
    ]))
    engine = FakeEngine(epoch=0.0, first_fault=1000.0, clear=3000.0)
    report = ChaosVerifier(
        timeseries=ts, engine=engine,
        slo=RecoverySLO(window_ms=2000.0, latency_factor=3.0),
    ).verify()
    assert not report.passed
    assert any("latency SLO" in f for f in report.failures)


def test_latency_slo_fails_when_no_ops_complete_after_clear():
    ts = _series(_latency_series([
        (250, 10, 2.0), (500, 10, 2.0),
        (1500, 10, 20.0),
    ]))
    engine = FakeEngine(epoch=0.0, first_fault=1000.0, clear=3000.0)
    report = ChaosVerifier(
        timeseries=ts, engine=engine, slo=RecoverySLO(window_ms=2000.0),
    ).verify()
    assert not report.passed
    assert any("no completed ops" in f for f in report.failures)


def test_latency_baseline_requires_enough_prefault_samples():
    ts = _series(_latency_series([(250, 10, 2.0), (3250, 10, 2.0)]))
    engine = FakeEngine(epoch=0.0, first_fault=1000.0, clear=3000.0)
    report = ChaosVerifier(
        timeseries=ts, engine=engine, slo=RecoverySLO(window_ms=2000.0),
    ).verify()
    assert report.passed  # skipped, not failed
    assert any("not enough pre-fault samples" in line
               for line in report.checks)


def test_latency_baseline_excludes_prewarm_before_epoch():
    # A cold 50ms interval before the engine epoch must not inflate
    # the baseline.
    ts = _series(_latency_series([
        (100, 10, 50.0),  # pre-epoch (prelude) — excluded
        (400, 10, 2.0), (700, 10, 2.0),
        (3250, 10, 3.0),
    ]))
    engine = FakeEngine(epoch=200.0, first_fault=1000.0, clear=3000.0)
    report = ChaosVerifier(
        timeseries=ts, engine=engine, slo=RecoverySLO(window_ms=2000.0),
    ).verify()
    assert report.baseline_latency_ms == pytest.approx(2.0)
    assert report.passed


def test_hit_rate_slo_recovery_and_failure():
    def cache_series(intervals):
        hits = misses = 0.0
        h, m = [], []
        for t, dh, dm in intervals:
            hits += dh
            misses += dm
            h.append((t, hits))
            m.append((t, misses))
        return {"cache_hits_total": h, "cache_misses_total": m}

    engine = FakeEngine(epoch=0.0, first_fault=1000.0, clear=3000.0)
    good = _series({
        **_latency_series([(250, 10, 2.0), (500, 10, 2.0), (3250, 10, 2.0)]),
        **cache_series([(250, 80, 20), (500, 80, 20),
                        (3250, 60, 40)]),  # 0.6 >= 0.5 * 0.8
    })
    report = ChaosVerifier(
        timeseries=good, engine=engine, slo=RecoverySLO(window_ms=2000.0),
    ).verify()
    assert report.passed
    assert report.recovered_hit_rate == pytest.approx(0.6)

    bad = _series({
        **_latency_series([(250, 10, 2.0), (500, 10, 2.0), (3250, 10, 2.0)]),
        **cache_series([(250, 80, 20), (500, 80, 20),
                        (3250, 10, 90)]),  # 0.1 < 0.5 * 0.8
    })
    report = ChaosVerifier(
        timeseries=bad, engine=engine, slo=RecoverySLO(window_ms=2000.0),
    ).verify()
    assert not report.passed
    assert any("hit-rate SLO" in f for f in report.failures)


def test_render_mentions_verdict_and_checks():
    tracer = FakeTracer(open_spans=[
        FakeSpan("client.op", "client1", op="read file", path="/x"),
    ])
    text = ChaosVerifier(tracer=tracer).verify().render()
    assert text.startswith("verifier: FAIL")
    assert "hung: client1" in text
