"""Fault catalog units: victim policies, the killer, config swaps."""

import random

import pytest

from repro.chaos import ChaosEngine, FaultSpec, Scenario
from repro.chaos.faults import NameNodeKiller, pick_victim
from repro.sim import Environment

pytestmark = pytest.mark.chaos


class FakeInstance:
    def __init__(self, id, provisioned_at_ms=0.0):
        self.id = id
        self.provisioned_at_ms = provisioned_at_ms
        self.state = "warm"
        self.terminated = []

    def terminate(self, reason=""):
        self.state = "dead"
        self.terminated.append(reason)


class FakeDeployment:
    def __init__(self, name, instances):
        self.name = name
        self.instances = instances

    def live_instances(self):
        return [i for i in self.instances if i.state != "dead"]


class FakePlatform:
    def __init__(self, deployments):
        self.deployments = {d.name: d for d in deployments}


def test_pick_victim_policies():
    rng = random.Random(0)
    a = FakeInstance("a", provisioned_at_ms=10.0)
    b = FakeInstance("b", provisioned_at_ms=30.0)
    c = FakeInstance("c", provisioned_at_ms=20.0)
    warm = [a, b, c]
    assert pick_victim(warm, "round_robin", rng) is a
    assert pick_victim(warm, "youngest", rng) is b
    assert pick_victim(warm, "random", rng) in warm
    with pytest.raises(ValueError):
        pick_victim(warm, "eldest", rng)


def test_killer_validates_arguments():
    env = Environment()
    platform = FakePlatform([])
    with pytest.raises(ValueError):
        NameNodeKiller(env, platform, interval_ms=0.0)
    with pytest.raises(ValueError):
        NameNodeKiller(env, platform, interval_ms=10.0, policy="eldest")


def test_killer_round_robin_rotates_deployments():
    env = Environment()
    platform = FakePlatform([
        FakeDeployment("A", [FakeInstance("a1"), FakeInstance("a2")]),
        FakeDeployment("B", [FakeInstance("b1")]),
    ])
    killer = NameNodeKiller(env, platform, interval_ms=100.0)
    killer.start()
    env.run(until=450.0)
    killer.stop()
    assert [(k.deployment, k.instance_id) for k in killer.kills] == [
        ("A", "a1"), ("B", "b1"), ("A", "a2"),  # B empty by round 4
    ]
    assert platform.deployments["A"].instances[0].terminated == ["fault"]


def test_killer_random_policy_is_seed_reproducible():
    def kills(seed):
        env = Environment()
        platform = FakePlatform([
            FakeDeployment("A", [FakeInstance(f"a{i}") for i in range(6)]),
        ])
        killer = NameNodeKiller(
            env, platform, interval_ms=50.0, policy="random", seed=seed
        )
        killer.start()
        env.run(until=260.0)
        return [k.instance_id for k in killer.kills]

    assert kills(1) == kills(1)
    assert len(kills(1)) == 5


def test_killer_stop_is_idempotent():
    env = Environment()
    killer = NameNodeKiller(env, FakePlatform([]), interval_ms=10.0)
    killer.start()
    killer.stop()
    killer.stop()
    env.run(until=50.0)
    assert killer.kills == []


# -- config-swap faults: swap on activate, restore on deactivate --------

def _run_window(env, engine, spec, during, t_mid=10.0, t_end=40.0):
    engine.start(Scenario("s", faults=(spec,)))
    env.run(until=t_mid)
    during()
    env.run(until=t_end)


def test_lock_storm_swaps_and_restores_lock_timeout():
    from repro.metastore import NdbConfig, NdbStore

    env = Environment()
    store = NdbStore(env, NdbConfig(lock_timeout_ms=2_000.0))
    engine = ChaosEngine(env, store=store)
    original = store.locks.default_timeout_ms

    def during():
        assert store.locks.default_timeout_ms == 5.0

    _run_window(env, engine, FaultSpec(
        "lock_storm", at_ms=5.0, duration_ms=20.0, params={"timeout_ms": 5.0},
    ), during)
    assert store.locks.default_timeout_ms == original


def test_ack_loss_disable_retry_swaps_coordinator_config():
    from repro.coordination import make_coordinator

    env = Environment()
    coordinator = make_coordinator(env)
    engine = ChaosEngine(env, coordinator=coordinator)
    original = coordinator.config

    def during():
        assert coordinator.config.ack_max_retries == 0

    _run_window(env, engine, FaultSpec(
        "ack_loss", at_ms=5.0, duration_ms=20.0,
        params={"p": 1.0, "disable_retry": True},
    ), during)
    assert coordinator.config == original


def test_watch_delay_multiplies_watch_latency():
    from repro.coordination import make_coordinator

    env = Environment()
    coordinator = make_coordinator(env)
    engine = ChaosEngine(env, coordinator=coordinator)
    original = coordinator.config.watch_ms

    def during():
        assert coordinator.config.watch_ms == pytest.approx(original * 20.0)

    _run_window(env, engine, FaultSpec(
        "watch_delay", at_ms=5.0, duration_ms=20.0, params={"factor": 20.0},
    ), during)
    assert coordinator.config.watch_ms == original


def test_cold_start_storm_and_capacity_crunch_swap_platform_config():
    from repro.faas import FaaSConfig, FaaSPlatform

    env = Environment()
    platform = FaaSPlatform(env, FaaSConfig(), rng=random.Random(0))
    engine = ChaosEngine(env, platform=platform)
    original = platform.config
    engine.start(Scenario("s", faults=(
        FaultSpec("cold_start_storm", at_ms=5.0, duration_ms=20.0,
                  params={"factor": 4.0}),
        FaultSpec("capacity_crunch", at_ms=5.0, duration_ms=20.0,
                  params={"fraction": 0.25}),
    )))
    env.run(until=10.0)
    assert platform.config.cold_start_min_ms == pytest.approx(
        original.cold_start_min_ms * 4.0
    )
    assert platform.config.cluster_vcpus == pytest.approx(
        original.cluster_vcpus * 0.25
    )
    env.run(until=40.0)
    assert platform.config.cold_start_min_ms == original.cold_start_min_ms
    assert platform.config.cluster_vcpus == original.cluster_vcpus


def test_tcp_sever_closes_connections_and_logs_count():
    class FakeConnection:
        def __init__(self):
            self.alive = True

        def close(self):
            self.alive = False

    instance = FakeInstance("a1")
    instance._connections = [FakeConnection(), FakeConnection()]
    platform = FakePlatform([FakeDeployment("A", [instance])])
    env = Environment()
    engine = ChaosEngine(env, platform=platform)
    engine.start(Scenario("s", faults=(
        FaultSpec("tcp_sever", at_ms=5.0),
    )))
    env.run(until=10.0)
    assert instance._connections == []
    injects = [e for e in engine.log if e.action == "inject"]
    assert dict(injects[0].detail)["closed"] == 2
