"""Golden determinism hashes for the kernel under the chaos engine.

The calendar-queue scheduler and every other kernel optimisation must
be *observationally* invisible: same seed, same executed event
sequence, bit for bit.  This pins the traced ``ack-loss`` regression
scenario to literal hashes — the tracer's streaming blake2b event hash
and the chaos engine's fault-log hash — recorded from the pre-calendar
heap kernel.  Any scheduler change that reorders even one event flips
the event hash; any change to fault timing flips the log hash.

The global id counters are reset first (``reset_sim_counters``), so
the run sees exactly what a fresh interpreter would — the condition
under which the goldens were recorded.
"""

import pytest

from repro.chaos import ChaosRunConfig, RecoverySLO, run_scenario
from repro.chaos.scenarios import builtin_scenarios

pytestmark = [pytest.mark.chaos, pytest.mark.kernel, pytest.mark.slow]


GOLDEN_CONFIG = ChaosRunConfig(
    seed=0,
    clients=24,
    deployments=4,
    write_fraction=0.15,
    think_ms=40.0,
    telemetry_interval_ms=250.0,
    drain_ms=8_000.0,
    slo=RecoverySLO(window_ms=10_000.0),
)

#: Recorded from the global-heap kernel; the calendar queue reproduces
#: them bit for bit.
GOLDEN_EVENT_HASH = "afad0c800030eb30503a49d37a0b8a4b"
GOLDEN_LOG_HASH = "2275e4049ac65a812ef6bb753e569615"
GOLDEN_OPS_OK = 8268


def test_ack_loss_scenario_matches_golden_hashes(reset_sim_counters):
    result = run_scenario(builtin_scenarios()["ack-loss"], GOLDEN_CONFIG)
    assert result.event_hash == GOLDEN_EVENT_HASH
    assert result.log_hash == GOLDEN_LOG_HASH
    assert result.ops_ok == GOLDEN_OPS_OK


def test_attached_idle_fleet_leaves_goldens_byte_identical(reset_sim_counters):
    """A DataNode fleet that is constructed and attached but never
    started (no processes, no chunk-write draws) must be completely
    invisible: the same goldens, bit for bit.

    This pins the fleet's determinism contract — construction draws
    nothing from any shared stream and schedules nothing.
    """
    from dataclasses import replace

    config = replace(
        GOLDEN_CONFIG,
        datanodes=9,
        datanode_start=False,
        chunk_write_fraction=0.0,
    )
    result = run_scenario(builtin_scenarios()["ack-loss"], config)
    assert result.fleet is not None
    assert result.event_hash == GOLDEN_EVENT_HASH
    assert result.log_hash == GOLDEN_LOG_HASH
    assert result.ops_ok == GOLDEN_OPS_OK
