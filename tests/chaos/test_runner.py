"""End-to-end scenario runs: survive, catch the broken path, repeat."""

import pytest

from repro.chaos import (
    ChaosRunConfig,
    FaultSpec,
    RecoverySLO,
    Scenario,
    run_matrix,
    run_scenario,
)

pytestmark = [pytest.mark.chaos, pytest.mark.slow]


SMALL = ChaosRunConfig(
    clients=6,
    deployments=2,
    vcpus=128.0,
    think_ms=20.0,
    drain_ms=2_500.0,
    slo=RecoverySLO(window_ms=1_500.0),
)


def test_small_drop_scenario_survives(reset_sim_counters):
    scenario = Scenario("drops", faults=(
        FaultSpec("tcp_drop", at_ms=700.0, duration_ms=800.0,
                  params={"p": 0.3}),
    ))
    result = run_scenario(scenario, SMALL)
    assert result.passed, result.report.render()
    assert result.ops_ok > 0
    assert result.event_hash and result.log_hash
    actions = [event.action for event in result.engine.log]
    assert "activate" in actions and "deactivate" in actions
    assert "PASS" in result.summary()


def test_ack_loss_without_retry_is_caught(reset_sim_counters):
    """The deliberately broken recovery path: a dropped ACK with
    redelivery disabled strands the writer, and the verifier says so."""
    scenario = Scenario("noretry", faults=(
        FaultSpec("ack_loss", at_ms=300.0, duration_ms=1_200.0,
                  params={"p": 1.0, "disable_retry": True}),
    ))
    from dataclasses import replace

    config = replace(SMALL, write_fraction=0.5,
                     slo=RecoverySLO(window_ms=1_200.0))
    result = run_scenario(scenario, config)
    assert not result.passed
    assert result.report.hung_ops
    assert any("liveness" in failure for failure in result.report.failures)
    assert "FAIL" in result.summary()


def test_same_seed_same_event_and_fault_hashes(reset_sim_counters):
    scenario = Scenario("repeat", faults=(
        FaultSpec("tcp_drop", at_ms=400.0, duration_ms=600.0,
                  params={"p": 0.4}),
        FaultSpec("namenode_kill", at_ms=500.0, duration_ms=400.0,
                  params={"interval_ms": 200.0, "policy": "random"}),
    ))
    first = run_scenario(scenario, SMALL)
    reset_sim_counters()
    second = run_scenario(scenario, SMALL)
    assert first.event_hash == second.event_hash
    assert first.log_hash == second.log_hash
    assert [str(e) for e in first.engine.log] == [
        str(e) for e in second.engine.log
    ]


def test_run_matrix_collects_per_scenario_results(reset_sim_counters):
    scenarios = [
        Scenario("m1", faults=(
            FaultSpec("tcp_delay", at_ms=300.0, duration_ms=500.0,
                      params={"extra_ms": 5.0}),
        )),
        Scenario("m2", faults=(
            FaultSpec("http_brownout", at_ms=300.0, duration_ms=500.0,
                      params={"extra_ms": 10.0, "fail_p": 0.2}),
        )),
    ]
    results = run_matrix(scenarios, SMALL)
    assert [r.scenario.name for r in results] == ["m1", "m2"]
    assert all(r.passed for r in results)
