"""Scenario DSL: validation, JSON round-trips, built-in catalog."""

import pytest

from repro.chaos import (
    EXPECTED_FAIL,
    MATRIX,
    FaultSpec,
    Scenario,
    builtin_scenarios,
    get_scenario,
    load_scenario,
    save_scenario,
    validate_scenario,
)

pytestmark = pytest.mark.chaos


def test_fault_spec_rejects_negative_times():
    with pytest.raises(ValueError):
        FaultSpec("tcp_drop", at_ms=-1.0)
    with pytest.raises(ValueError):
        FaultSpec("tcp_drop", at_ms=0.0, duration_ms=-5.0)


def test_fault_spec_clear_ms():
    spec = FaultSpec("tcp_drop", at_ms=100.0, duration_ms=250.0)
    assert spec.clear_ms == 350.0
    assert FaultSpec("tcp_sever", at_ms=10.0).clear_ms == 10.0


def test_fault_spec_dict_round_trip_omits_defaults():
    spec = FaultSpec("tcp_sever", at_ms=10.0)
    assert spec.to_dict() == {"kind": "tcp_sever", "at_ms": 10.0}
    full = FaultSpec("tcp_drop", at_ms=1.0, duration_ms=2.0, params={"p": 0.3})
    assert FaultSpec.from_dict(full.to_dict()) == full


def test_fault_spec_from_dict_rejects_unknown_and_missing_fields():
    with pytest.raises(ValueError, match="unknown"):
        FaultSpec.from_dict({"kind": "tcp_drop", "at_ms": 1.0, "when": 2.0})
    with pytest.raises(ValueError, match="requires"):
        FaultSpec.from_dict({"kind": "tcp_drop"})


def test_scenario_requires_name():
    with pytest.raises(ValueError):
        Scenario(name="", faults=())


def test_scenario_window_properties():
    scenario = Scenario("s", faults=(
        FaultSpec("tcp_sever", at_ms=500.0),
        FaultSpec("tcp_drop", at_ms=100.0, duration_ms=900.0),
    ))
    assert scenario.first_fault_ms == 100.0
    assert scenario.clear_ms == 1_000.0
    empty = Scenario("empty", faults=())
    assert empty.first_fault_ms == float("inf")
    assert empty.clear_ms == 0.0


def test_scenario_json_round_trip(tmp_path):
    scenario = Scenario(
        "round-trip",
        faults=(
            FaultSpec("tcp_drop", at_ms=1.0, duration_ms=2.0,
                      params={"p": 0.25, "deployment": "d0"}),
            FaultSpec("tcp_sever", at_ms=3.0),
        ),
        description="desc",
    )
    path = save_scenario(scenario, str(tmp_path / "s.json"))
    assert load_scenario(path) == scenario


def test_scenario_from_dict_validates_shape():
    with pytest.raises(ValueError, match="name"):
        Scenario.from_dict({"faults": []})
    with pytest.raises(ValueError, match="list"):
        Scenario.from_dict({"name": "x", "faults": {"kind": "tcp_drop"}})


def test_validate_scenario_unknown_kind():
    bad = Scenario("bad", faults=(FaultSpec("meteor_strike", at_ms=0.0),))
    with pytest.raises(ValueError, match="unknown fault kind"):
        validate_scenario(bad)


def test_validate_scenario_unknown_param():
    bad = Scenario("bad", faults=(
        FaultSpec("tcp_drop", at_ms=0.0, duration_ms=1.0,
                  params={"probability": 0.5}),
    ))
    with pytest.raises(ValueError, match="unknown param"):
        validate_scenario(bad)


def test_validate_scenario_requires_duration_where_needed():
    bad = Scenario("bad", faults=(FaultSpec("tcp_drop", at_ms=0.0),))
    with pytest.raises(ValueError, match="duration_ms"):
        validate_scenario(bad)


def test_validate_scenario_probability_bounds():
    bad = Scenario("bad", faults=(
        FaultSpec("ack_loss", at_ms=0.0, duration_ms=1.0, params={"p": 1.5}),
    ))
    with pytest.raises(ValueError, match="\\[0, 1\\]"):
        validate_scenario(bad)


def test_validate_scenario_victim_policy():
    bad = Scenario("bad", faults=(
        FaultSpec("namenode_kill", at_ms=0.0, duration_ms=1.0,
                  params={"policy": "eldest"}),
    ))
    with pytest.raises(ValueError, match="policy"):
        validate_scenario(bad)


def test_builtin_catalog_is_valid_and_covers_the_matrix():
    scenarios = builtin_scenarios()
    for scenario in scenarios.values():
        validate_scenario(scenario)
    for name in MATRIX:
        assert name in scenarios
    for name in EXPECTED_FAIL:
        assert name in scenarios
        assert name not in MATRIX
    # The matrix spans the required layers: FaaS kills, TCP fabric,
    # HTTP gateway, metastore shard, coordinator ACKs.
    kinds = {
        spec.kind for name in MATRIX for spec in scenarios[name].faults
    }
    assert {"namenode_kill", "tcp_sever", "http_brownout",
            "shard_outage", "ack_loss"} <= kinds


def test_get_scenario_unknown_name():
    assert get_scenario("ack-loss").name == "ack-loss"
    with pytest.raises(KeyError):
        get_scenario("nope")
