import itertools

import pytest


@pytest.fixture
def reset_sim_counters(monkeypatch):
    """Reset global id counters so two runs in one process are comparable."""
    from repro.core import client as client_mod
    from repro.core import messages
    from repro.faas import platform as platform_mod
    from repro.rpc import connections

    monkeypatch.setattr(client_mod.LambdaFSClient, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.TcpConnection, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.TcpServer, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.ClientVM, "_ids", itertools.count(1))
    monkeypatch.setattr(platform_mod.FunctionInstance, "_ids",
                        itertools.count(1))
    monkeypatch.setattr(messages, "_request_ids", itertools.count(1))

    def reset():
        monkeypatch.setattr(
            client_mod.LambdaFSClient, "_ids", itertools.count(1))
        monkeypatch.setattr(
            connections.TcpConnection, "_ids", itertools.count(1))
        monkeypatch.setattr(connections.TcpServer, "_ids", itertools.count(1))
        monkeypatch.setattr(connections.ClientVM, "_ids", itertools.count(1))
        monkeypatch.setattr(
            platform_mod.FunctionInstance, "_ids", itertools.count(1))
        monkeypatch.setattr(messages, "_request_ids", itertools.count(1))

    return reset
