"""Resilience mechanisms on the live stack (docs/resilience.md).

These drive a real :class:`LambdaFS` with the resilience control
plane attached and verify the enforcement behaviors the chaos gate
relies on: sheds never reach the metastore, expired deadlines are
refused before execution, degraded reads stay within the declared
staleness bound (checked by the coherence checker, not trusted), and
the tracer's connection-leak tripwire reads zero after teardown.
"""

import pytest

from repro.coordination.coordinator import Invalidation
from repro.core import LambdaFS, LambdaFSConfig, OpType
from repro.core.client import ClientConfig
from repro.core.messages import MetadataRequest
from repro.faas import FaaSConfig
from repro.metastore import NdbConfig
from repro.metastore.errors import TransactionAborted
from repro.resilience import ResilienceConfig
from repro.sim import Environment
from repro.trace import install_tracer

pytestmark = pytest.mark.resilience


def make_fs(env, **overrides):
    defaults = dict(
        num_deployments=2,
        resilience=ResilienceConfig(),
        faas=FaaSConfig(
            cluster_vcpus=64.0,
            vcpus_per_instance=4.0,
            concurrency_level=4,
            cold_start_min_ms=50.0,
            cold_start_max_ms=80.0,
            app_init_ms=10.0,
            idle_reclaim_ms=60_000.0,
        ),
        ndb=NdbConfig(rtt_ms=0.2),
        client=ClientConfig(replacement_probability=0.0),
    )
    defaults.update(overrides)
    fs = LambdaFS(env, LambdaFSConfig(**defaults))
    fs.format()
    fs.start()
    return fs


def drive(env, generator):
    box = {}

    def proc(env):
        box["value"] = yield from generator

    done = env.process(proc(env))
    env.run(until=done)
    return box["value"]


def warm_instance(env, fs, deployment_index=0):
    """Prewarm and return one live NameNode instance."""
    drive(env, fs.prewarm())
    name = fs.partitioner.deployment_names()[deployment_index]
    return fs.platform.deployments[name].instances[0]


def force_pressure(namenode):
    """Latch a NameNode's CoDel shedder into the shedding state.

    ``target_ms = -1`` keeps every subsequent delay observation at or
    above target, so the in-handler observe() call cannot un-latch the
    state mid-test.
    """
    shedder = namenode._shedder
    shedder.target_ms = -1.0
    shedder.first_above_ms = 0.0
    shedder.shedding = True
    shedder.drop_next_ms = 0.0


def test_requests_are_stamped_with_absolute_deadline(monkeypatch):
    env = Environment()
    fs = make_fs(env)
    client = fs.new_client()
    stamped = []
    original = fs.resilience.stamp

    def spy(request):
        original(request)
        stamped.append((env.now, request.deadline_ms))

    monkeypatch.setattr(fs.resilience, "stamp", spy)
    result = drive(env, client.mkdirs("/d"))
    assert result.ok
    assert stamped
    for issued_at, deadline in stamped:
        assert deadline == issued_at + fs.config.resilience.deadline_ms


def test_shed_at_admission_never_reaches_the_store():
    env = Environment()
    fs = make_fs(env)
    instance = warm_instance(env, fs)
    force_pressure(instance.app)

    request = MetadataRequest(op=OpType.MKDIRS, path="/shedded",
                             client_id="probe")
    response = drive(env, instance.serve(request, via="tcp"))
    assert response.shed and not response.ok
    assert fs.resilience.sheds == 1

    # The refused write must have left no trace in the metastore: a
    # fresh (un-pressured) client sees the path as never created.
    instance.app._shedder.shedding = False
    instance.app._shedder.target_ms = 1e9
    client = fs.new_client()
    result = drive(env, client.stat("/shedded"))
    assert not result.ok and "NotFound" in result.error


def test_expired_deadline_is_refused_before_execution():
    env = Environment()
    fs = make_fs(env)
    instance = warm_instance(env, fs)

    def scenario(env):
        yield env.timeout(10.0)
        request = MetadataRequest(op=OpType.CREATE_FILE, path="/late",
                                 client_id="probe",
                                 deadline_ms=env.now - 1.0)
        response = yield from instance.serve(request, via="tcp")
        return response

    response = drive(env, scenario(env))
    assert response.shed and not response.ok
    assert "deadline" in response.error
    assert fs.resilience.deadline_expirations == 1
    assert fs.resilience.sheds == 1

    client = fs.new_client()
    result = drive(env, client.stat("/late"))
    assert not result.ok and "NotFound" in result.error


def test_bounded_stale_read_verified_by_coherence_checker():
    env = Environment()
    tracer = install_tracer(env)
    fs = make_fs(env)
    instance = warm_instance(env, fs)
    namenode = instance.app
    client = fs.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        first = yield from client.stat("/d/f")
        assert first.ok and not first.stale
        return True

    assert drive(env, scenario(env))

    # Deliver a real invalidation through the follower-side handler
    # (snapshot for bounded-staleness serving + cache drop), emitting
    # the same ``coord.inv_deliver`` point the coordinator would so
    # the checker records the invalidation time itself.
    assert namenode.cache.peek("/d/f") is not None
    tracer.point("coord.inv_deliver", namenode.member_id,
                 member=namenode.member_id, paths=("/d/f",))
    namenode._on_invalidation(
        Invalidation(inv_id=999, deployment=namenode.deployment_name,
                     paths=("/d/f",))
    )
    assert namenode.cache.peek("/d/f") is None
    force_pressure(namenode)

    def degraded(env):
        yield env.timeout(100.0)
        return (yield from instance.serve(
            MetadataRequest(op=OpType.STAT, path="/d/f", client_id="probe"),
            via="tcp",
        ))

    response = drive(env, degraded(env))
    assert response.ok and response.stale
    bound = fs.config.resilience.stale_read_bound_ms
    assert 0.0 < response.staleness_ms <= bound
    assert fs.resilience.stale_reads == 1
    # The checker *verified* the bound (it saw the bounded_stale hit);
    # a violation here would mean the degradation served too-old data.
    coherence = tracer.checkers[0]
    assert coherence.stale_hits_ok == 1
    assert tracer.violations() == []


def test_stale_snapshot_beyond_bound_is_not_served():
    env = Environment()
    fs = make_fs(env)
    instance = warm_instance(env, fs)
    namenode = instance.app
    client = fs.new_client()

    def setup(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        yield from client.stat("/d/f")
        return True

    assert drive(env, setup(env))
    namenode._on_invalidation(
        Invalidation(inv_id=999, deployment=namenode.deployment_name,
                     paths=("/d/f",))
    )
    force_pressure(namenode)

    def late_read(env):
        # Sleep past the staleness bound: the snapshot is now useless
        # and the read must take the normal store path instead.
        yield env.timeout(fs.config.resilience.stale_read_bound_ms + 1.0)
        return (yield from instance.serve(
            MetadataRequest(op=OpType.STAT, path="/d/f", client_id="probe"),
            via="tcp",
        ))

    response = drive(env, late_read(env))
    assert not response.stale
    assert fs.resilience.stale_reads == 0


def test_tracer_connection_counter_zero_after_teardown():
    env = Environment()
    tracer = install_tracer(env)
    fs = make_fs(env)
    client = fs.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        yield from client.stat("/d/f")
        return True

    assert drive(env, scenario(env))
    # Connect-backs opened real TCP connections; the counter must
    # agree with the servers' own live-connection accounting.
    live = sum(server.connection_count() for server in client.vm.servers)
    assert tracer.open_connections == live > 0
    assert tracer.summary()["open_connections"] == live

    # Healthy teardown closes every connection the instances held.
    for instance in list(fs.all_instances()):
        instance.terminate(reason="test")
    assert tracer.open_connections == 0


def test_datanode_reports_survive_store_outage(monkeypatch):
    env = Environment()
    fs = make_fs(env)

    def always_aborts(*args, **kwargs):
        raise TransactionAborted("store unreachable")
        yield  # pragma: no cover - marks this as a generator function

    monkeypatch.setattr(fs.store, "run_transaction", always_aborts)
    interval = fs.datanodes.config.report_interval_ms
    env.run(until=interval * 3 + 1.0)
    # Every edition failed, none killed the reporter loops.
    assert fs.datanodes.reports_published == 0
    assert fs.datanodes.reports_dropped >= fs.datanodes.config.count * 3
