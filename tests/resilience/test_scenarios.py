"""End-to-end metastable-overload runs through the chaos gate.

The acceptance pair for the resilience layer: under the canonical
convoy-prone workload the ``metastable-brownout`` scenario must PASS
gate 7 with enforcement on, and its ``-noshed`` twin (the
``disable_shedding`` latch flips enforcement off mid-run while the
observational tripwires keep counting) must FAIL it — for the honest
reason that ops ground past their stamped deadlines.
"""

import pytest

from repro.chaos import builtin_scenarios, resilience_run_config, run_scenario

pytestmark = [pytest.mark.resilience, pytest.mark.chaos, pytest.mark.slow]


def test_metastable_brownout_passes_with_enforcement(reset_sim_counters):
    result = run_scenario(
        builtin_scenarios()["metastable-brownout"], resilience_run_config()
    )
    assert result.passed, result.report.render()
    snapshot = result.resilience
    # Enforcement stayed latched on and did real work: the brownout
    # tripped shard breakers, and not one op committed past deadline.
    assert snapshot["enabled"]
    assert snapshot["breaker_opens"] > 0
    assert snapshot["deadline_violations"] == 0
    assert result.report.breaker_transitions > 0


def test_noshed_twin_fails_with_deadline_violations(reset_sim_counters):
    result = run_scenario(
        builtin_scenarios()["metastable-brownout-noshed"],
        resilience_run_config(),
    )
    assert not result.passed
    snapshot = result.resilience
    # The latch stood enforcement down...
    assert not snapshot["enabled"]
    # ...but the observational side kept counting: work the deadline
    # already wrote off still committed, and gate 7 names it.
    assert snapshot["deadline_violations"] > 0
    assert any(
        "past their deadline" in failure for failure in result.report.failures
    )


def test_resilience_scenarios_are_deterministic(reset_sim_counters):
    config = resilience_run_config()
    scenario = builtin_scenarios()["metastable-brownout"]
    first = run_scenario(scenario, config)
    reset_sim_counters()
    second = run_scenario(scenario, config)
    assert first.event_hash == second.event_hash
    assert first.log_hash == second.log_hash
    assert first.resilience == second.resilience
