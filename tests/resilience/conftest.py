from tests.chaos.conftest import reset_sim_counters  # noqa: F401
