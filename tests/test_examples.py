"""Smoke tests: the runnable examples actually run.

Only the cheap ones execute here; the heavier scenario scripts
(spotify_burst, elastic_scaling, fault_tolerance) are exercised by
the benchmark suite's equivalent drivers.
"""

import importlib.util
import sys
from pathlib import Path

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    module = load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "mkdirs  -> ok=True" in out
    assert "block locations" in out
    assert "pay-per-use cost so far" in out


def test_indexfs_port_runs(capsys):
    module = load_example("indexfs_port")
    # Shrink the scenario so the smoke test stays fast.
    module.CLIENTS = 8
    from repro.workloads import TreeTestConfig

    module.CONFIG = TreeTestConfig(writes_per_client=20, reads_per_client=20)
    module.main()
    out = capsys.readouterr().out
    assert "write throughput" in out
    assert "λIndexFS" in out


def test_all_examples_importable():
    for path in sorted(EXAMPLES.glob("*.py")):
        spec = importlib.util.spec_from_file_location(path.stem + "_import", path)
        module = importlib.util.module_from_spec(spec)
        # Import only (no main()) — catches syntax/import rot.
        spec.loader.exec_module(module)
