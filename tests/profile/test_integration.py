"""Profiler on real runs: exact attribution, exports, injected regressions.

The acceptance bar from the issue: on a traced microbenchmark, every
completed client op's stage attribution sums to its end-to-end latency
within 1e-6 ms, with no unattributed gap beyond an explicit ``other``
bucket below 5%; and doubling the store's service times must surface
as a ``store``-stage regression in the profile diff.
"""

import itertools
import json

import pytest

from repro.bench.harness import build_lambdafs, drive
from repro.core import OpType
from repro.core import client as client_mod
from repro.core import messages
from repro.faas import platform as platform_mod
from repro.metastore import NdbConfig
from repro.namespace.treegen import TreeSpec, generate_tree
from repro.profile import chrome_trace_events, diff_profiles, folded_stacks
from repro.rpc import connections
from repro.sim import Environment
from repro.workloads import MicroBenchmark

pytestmark = pytest.mark.profile


def _reset_global_counters(monkeypatch):
    monkeypatch.setattr(client_mod.LambdaFSClient, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.TcpConnection, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.TcpServer, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.ClientVM, "_ids", itertools.count(1))
    monkeypatch.setattr(platform_mod.FunctionInstance, "_ids", itertools.count(1))
    monkeypatch.setattr(messages, "_request_ids", itertools.count(1))


def _profiled_run(monkeypatch, slow_store=1.0, clients=16, ops=12, seed=0):
    _reset_global_counters(monkeypatch)
    env = Environment()
    tree = generate_tree(TreeSpec(seed=seed))
    ndb = None
    if slow_store != 1.0:
        base = NdbConfig()
        ndb = NdbConfig(
            read_service_ms=base.read_service_ms * slow_store,
            write_service_ms=base.write_service_ms * slow_store,
            commit_service_ms=base.commit_service_ms * slow_store,
        )
    handle = build_lambdafs(
        env, tree, deployments=4, seed=seed, ndb=ndb,
        client_overrides={"replacement_probability": 0.05},
        profile=True,
    )
    client_objects = handle.make_clients(clients)
    drive(env, handle.prewarm())
    # Warm a few TCP connections so both transports appear.
    bench = MicroBenchmark(env, tree, seed=seed)
    drive(env, bench.run(client_objects[:8], OpType.READ_FILE, 0, 8))
    drive(env, bench.run(client_objects, OpType.READ_FILE, ops, 0))
    drive(env, bench.run(client_objects, OpType.CREATE_FILE, max(1, ops // 4), 0))
    assert handle.profiler is not None
    return handle, handle.profiler.analyze()


def test_attribution_is_exact_on_a_real_run(monkeypatch):
    handle, profile = _profiled_run(monkeypatch)
    assert len(profile.ops) > 100
    for record in profile.ops:
        # The tiling is exact: stage sums equal end-to-end latency.
        assert record.attributed_ms == pytest.approx(
            record.total_ms, abs=1e-6
        ), (record.op, record.span_id)
    # Every instrumented kind maps to a named stage; the `other`
    # fallback stays a rounding bucket, not a dumping ground.
    totals = profile.stage_totals()
    grand = sum(totals.values())
    assert grand > 0
    assert totals["other"] / grand < 0.05
    # No tracer-side leaks: all spans closed at end of run.
    assert handle.tracer.summary()["open_spans"] == 0
    assert profile.open_roots == 0


def test_real_run_touches_the_expected_stages(monkeypatch):
    _, profile = _profiled_run(monkeypatch)
    by_type = profile.by_op_type()
    assert set(by_type) == {"read file", "create file"}
    reads = profile.stage_totals("read file")
    writes = profile.stage_totals("create file")
    # Reads hit the store through the namenode over both transports.
    assert reads["store"] > 0
    assert reads["namenode"] > 0
    assert reads["tcp_transit"] > 0
    assert reads["http_gateway"] > 0
    # Writes commit transactions; store dominates their latency here.
    assert writes["store"] > 0
    assert max(writes, key=writes.get) == "store"


def test_exports_from_a_real_run_are_well_formed(monkeypatch, tmp_path):
    handle, profile = _profiled_run(monkeypatch, clients=8, ops=6)
    events = chrome_trace_events(handle.tracer.spans.values())
    payload = json.loads(json.dumps({"traceEvents": events}))
    assert payload["traceEvents"]
    for event in payload["traceEvents"]:
        if event["ph"] != "X":
            continue
        assert event["ts"] >= 0
        assert event["dur"] >= 0
    stacks = folded_stacks(profile)
    for line in stacks.strip().splitlines():
        assert int(line.rsplit(" ", 1)[1]) > 0


def test_doubled_store_service_time_is_flagged_in_store_stage(monkeypatch):
    _, baseline = _profiled_run(monkeypatch)
    _, slowed = _profiled_run(monkeypatch, slow_store=2.0)
    diff = diff_profiles(baseline, slowed)
    regressions = diff.regressions()
    assert regressions
    flagged = {(delta.op, delta.stage) for delta in regressions}
    assert ("create file", "store") in flagged
    # The dominant regression is the store stage, not a knock-on.
    assert diff.worst().stage == "store"


def test_self_diff_of_a_real_run_is_clean(monkeypatch):
    _, first = _profiled_run(monkeypatch)
    _, second = _profiled_run(monkeypatch)
    diff = diff_profiles(first, second)
    assert diff.regressions() == []
    assert diff.improvements() == []
