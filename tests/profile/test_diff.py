"""Run-to-run profile diffing: regression detection and formatting."""

import pytest

from repro.profile import Profile, diff_profiles, format_diff
from repro.profile.critical_path import OpProfile
from repro.profile.stages import STAGES

pytestmark = pytest.mark.profile


def _op(op, start, stages, span_id=1):
    full = {stage: 0.0 for stage in STAGES}
    full.update(stages)
    end = start + sum(full.values())
    return OpProfile(
        span_id=span_id, op=op, path="/x", ok=True, via="tcp",
        start_ms=start, end_ms=end, stages=full,
    )


def _profile(per_op_stages, count=8):
    """Build a profile with `count` identical ops per op type."""
    ops = []
    span_id = 1
    clock = 0.0
    for op, stages in per_op_stages.items():
        for _ in range(count):
            ops.append(_op(op, clock, stages, span_id=span_id))
            span_id += 1
            clock += 10.0
    return Profile(ops)


BASELINE = {
    "read file": {"tcp_transit": 0.4, "namenode": 0.3, "store": 1.0},
    "create file": {"http_gateway": 1.0, "store": 2.0, "coherence": 0.8},
}


def test_self_diff_is_clean():
    before = _profile(BASELINE)
    after = _profile(BASELINE)
    diff = diff_profiles(before, after)
    assert diff.regressions() == []
    assert diff.improvements() == []
    assert "0 regression(s), 0 improvement(s)" in format_diff(diff)


def test_injected_slowdown_is_flagged_in_the_right_stage():
    slowed = {
        op: {stage: (ms * 2.0 if stage == "store" else ms)
             for stage, ms in stages.items()}
        for op, stages in BASELINE.items()
    }
    diff = diff_profiles(_profile(BASELINE), _profile(slowed))
    regressions = diff.regressions()
    assert regressions
    assert {(d.op, d.stage) for d in regressions} == {
        ("read file", "store"), ("create file", "store"),
    }
    worst = diff.worst()
    assert worst.stage == "store"
    assert worst.op == "create file"  # +2.0 ms/op beats +1.0 ms/op
    assert worst.delta_ms == pytest.approx(2.0)
    text = format_diff(diff)
    assert "REGRESSION" in text
    assert "2 regression(s)" in text


def test_improvement_is_reported_not_flagged():
    faster = {
        op: {stage: (ms * 0.5 if stage == "store" else ms)
             for stage, ms in stages.items()}
        for op, stages in BASELINE.items()
    }
    diff = diff_profiles(_profile(BASELINE), _profile(faster))
    assert diff.regressions() == []
    assert {(d.op, d.stage) for d in diff.improvements()} == {
        ("read file", "store"), ("create file", "store"),
    }


def test_min_ms_floor_suppresses_jitter():
    jittered = {
        "read file": dict(BASELINE["read file"], tcp_transit=0.43),
        "create file": BASELINE["create file"],
    }
    # +0.03 ms is > 25% relative? No: 0.03/0.4 = 7.5%. Make it relative-
    # large but absolute-tiny instead: a 0.01 ms stage doubling.
    tiny_before = {"read file": {"invoker_queue": 0.01, "store": 1.0}}
    tiny_after = {"read file": {"invoker_queue": 0.02, "store": 1.0}}
    diff = diff_profiles(_profile(tiny_before), _profile(tiny_after),
                         min_ms=0.05)
    assert diff.regressions() == []  # +0.01 ms is below the floor
    diff2 = diff_profiles(_profile(BASELINE), _profile(jittered))
    assert diff2.regressions() == []  # +7.5% is below the 25% threshold


def test_op_present_in_only_one_run_is_not_flagged():
    before = _profile({"read file": BASELINE["read file"]})
    after = _profile(BASELINE)  # adds "create file"
    diff = diff_profiles(before, after)
    assert all(d.op == "read file" for d in diff.regressions())
    assert diff.regressions() == []


def test_threshold_is_tunable():
    slowed = {
        "read file": dict(BASELINE["read file"], store=1.15),
    }
    before = _profile({"read file": BASELINE["read file"]})
    after = _profile(slowed)
    # +15% passes a 10% threshold but not the default 25%.
    assert diff_profiles(before, after).regressions() == []
    loose = diff_profiles(before, after, rel_threshold=0.10)
    assert [(d.op, d.stage) for d in loose.regressions()] == [
        ("read file", "store"),
    ]
