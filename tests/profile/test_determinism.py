"""Profiling must be free: zero effect on the simulated event stream.

The profiler only reads spans after (or during) a run — it schedules
nothing.  These tests pin that down with the tracer's streaming event
hash: a profiled run is byte-identical to a merely traced run, and
analyzing mid-run perturbs nothing.
"""

import itertools

import pytest

from repro.bench.harness import build_lambdafs, drive
from repro.core import OpType
from repro.core import client as client_mod
from repro.core import messages
from repro.faas import platform as platform_mod
from repro.namespace.treegen import TreeSpec, generate_tree
from repro.rpc import connections
from repro.sim import Environment
from repro.workloads import MicroBenchmark

pytestmark = pytest.mark.profile


def _reset_global_counters(monkeypatch):
    monkeypatch.setattr(client_mod.LambdaFSClient, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.TcpConnection, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.TcpServer, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.ClientVM, "_ids", itertools.count(1))
    monkeypatch.setattr(platform_mod.FunctionInstance, "_ids", itertools.count(1))
    monkeypatch.setattr(messages, "_request_ids", itertools.count(1))


def _run(monkeypatch, trace=False, profile=False, analyze_midway=False,
         seed=3):
    _reset_global_counters(monkeypatch)
    env = Environment()
    tree = generate_tree(TreeSpec(seed=seed))
    handle = build_lambdafs(
        env, tree, deployments=4, seed=seed, trace=trace, profile=profile,
    )
    client_objects = handle.make_clients(12)
    drive(env, handle.prewarm())
    bench = MicroBenchmark(env, tree, seed=seed)
    drive(env, bench.run(client_objects, OpType.READ_FILE, 6, 4))
    if analyze_midway:
        # Analysis between phases must not disturb the simulation.
        handle.profiler.analyze()
    drive(env, bench.run(client_objects, OpType.CREATE_FILE, 3, 0))
    return handle


def test_profiled_run_hash_matches_traced_run(monkeypatch):
    traced = _run(monkeypatch, trace=True)
    profiled = _run(monkeypatch, profile=True)
    assert traced.tracer.summary()["event_hash"] == \
        profiled.tracer.summary()["event_hash"]
    assert traced.tracer.summary()["events_hashed"] == \
        profiled.tracer.summary()["events_hashed"]
    assert traced.profiler is None
    assert profiled.profiler is not None


def test_same_seed_profiled_runs_are_bit_identical(monkeypatch):
    first = _run(monkeypatch, profile=True)
    second = _run(monkeypatch, profile=True)
    assert first.tracer.summary()["event_hash"] == \
        second.tracer.summary()["event_hash"]
    first_profile = first.profiler.analyze()
    second_profile = second.profiler.analyze()
    assert first_profile.to_dict() == second_profile.to_dict()


def test_midrun_analysis_does_not_perturb(monkeypatch):
    plain = _run(monkeypatch, profile=True)
    poked = _run(monkeypatch, profile=True, analyze_midway=True)
    assert plain.tracer.summary()["event_hash"] == \
        poked.tracer.summary()["event_hash"]
    assert plain.profiler.analyze().to_dict() == \
        poked.profiler.analyze().to_dict()
