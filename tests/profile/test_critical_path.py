"""Critical-path math on hand-built span trees.

Each test constructs a tree with known geometry and asserts the exact
stage tiling the backward walk must produce: blocking children charge
their own stage, shadowed siblings are off-path, gaps are parent self
time, and the per-op stage sums equal end-to-end latency to float
precision.
"""

import pytest

from repro.profile import analyze_spans, attribute_op
from repro.profile.critical_path import _index_children
from repro.trace.tracer import Span

pytestmark = pytest.mark.profile


def _span(span_id, parent_id, kind, start, end, actor="a", **attrs):
    span = Span(span_id, parent_id, kind, actor, start, attrs)
    span.end_ms = end
    return span


def _attribute(spans):
    root = spans[0]
    return attribute_op(root, _index_children(spans))


def _assert_exact(record):
    assert record.attributed_ms == pytest.approx(record.total_ms, abs=1e-6)


def test_sequential_chain_tiles_exactly():
    spans = [
        _span(1, None, "client.op", 0.0, 10.0, op="stat", ok=True),
        _span(2, 1, "rpc.tcp", 1.0, 9.0),
        _span(3, 2, "nn.handle", 2.0, 8.0),
        _span(4, 3, "txn", 3.0, 7.0),
    ]
    record = _attribute(spans)
    assert record.total_ms == 10.0
    _assert_exact(record)
    assert record.stages["client_queue"] == pytest.approx(2.0)  # [0,1)+[9,10)
    assert record.stages["tcp_transit"] == pytest.approx(2.0)   # [1,2)+[8,9)
    assert record.stages["namenode"] == pytest.approx(2.0)      # [2,3)+[7,8)
    assert record.stages["store"] == pytest.approx(4.0)         # [3,7)
    assert record.stages["other"] == 0.0


def test_concurrent_fanout_charges_only_slowest_ack():
    # An INV round fans out to three members; only the slowest leg
    # gates the round, the other two are shadowed entirely.
    spans = [
        _span(1, None, "client.op", 0.0, 10.0, op="create file"),
        _span(2, 1, "coord.inv", 1.0, 9.0),
        _span(3, 2, "coord.member", 1.0, 3.0),   # fast — shadowed
        _span(4, 2, "coord.member", 1.0, 5.0),   # medium — shadowed tail
        _span(5, 2, "coord.member", 1.0, 9.0),   # slowest — on path
    ]
    record = _attribute(spans)
    _assert_exact(record)
    # The whole [1,9) window is coherence: the slowest member covers
    # it, and the round span's own residue is coherence too.
    assert record.stages["coherence"] == pytest.approx(8.0)
    assert record.stages["client_queue"] == pytest.approx(2.0)
    # Exactly one member leg appears in the segments (the slowest).
    member_segments = [
        segment for segment in record.segments
        if segment.kind == "coord.member"
    ]
    assert len(member_segments) == 1
    assert member_segments[0].start_ms == 1.0
    assert member_segments[0].end_ms == 9.0


def test_partial_shadowing_splits_between_siblings():
    # Sibling A [1,4), sibling B [3,8): B blocks [3,8), A only its
    # unshadowed prefix [1,3).
    spans = [
        _span(1, None, "client.op", 0.0, 10.0, op="stat"),
        _span(2, 1, "rpc.tcp", 1.0, 4.0),
        _span(3, 1, "coord.inv", 3.0, 8.0),
    ]
    record = _attribute(spans)
    _assert_exact(record)
    assert record.stages["coherence"] == pytest.approx(5.0)    # [3,8)
    assert record.stages["tcp_transit"] == pytest.approx(2.0)  # [1,3)
    assert record.stages["client_queue"] == pytest.approx(3.0)  # [0,1)+[8,10)


def test_failed_attempt_is_resubmit_wholesale():
    # Attempt 1 fails (error attr) — its whole duration is resubmit,
    # never decomposed into children; attempt 2 succeeds normally.
    spans = [
        _span(1, None, "client.op", 0.0, 12.0, op="read file"),
        _span(2, 1, "rpc.tcp", 0.0, 5.0, error="ConnectionDropped"),
        _span(3, 2, "nn.handle", 1.0, 4.0),    # inside the failed attempt
        _span(4, 1, "rpc.http", 5.0, 12.0),
        _span(5, 4, "nn.handle", 6.0, 11.0),
    ]
    record = _attribute(spans)
    _assert_exact(record)
    assert record.stages["resubmit"] == pytest.approx(5.0)
    assert record.stages["namenode"] == pytest.approx(5.0)
    assert record.stages["http_gateway"] == pytest.approx(2.0)
    # The failed attempt's inner nn.handle contributed nothing.
    assert not any(
        segment.kind == "nn.handle" and segment.start_ms < 5.0
        for segment in record.segments
    )


def test_straggler_overlap_is_clipped_at_resubmission():
    # Appendix B: the client abandons attempt 1 at t=4 and resubmits;
    # the abandoned server work continues past the op's own window and
    # overlaps the new attempt.  The walk charges the overlap to the
    # attempt that actually gated completion, and total still tiles.
    spans = [
        _span(1, None, "client.op", 0.0, 10.0, op="read file"),
        _span(2, 1, "rpc.tcp", 0.0, 4.0, error="RequestTimeout"),
        _span(3, 1, "rpc.tcp", 4.0, 10.0),
        _span(4, 3, "nn.handle", 5.0, 9.0),
    ]
    record = _attribute(spans)
    _assert_exact(record)
    assert record.stages["resubmit"] == pytest.approx(4.0)
    assert record.stages["namenode"] == pytest.approx(4.0)
    assert record.stages["tcp_transit"] == pytest.approx(2.0)


def test_child_extending_past_parent_end_is_clipped():
    # Abandoned work running past the root's end must not inflate the
    # attribution beyond the op's real latency.
    spans = [
        _span(1, None, "client.op", 0.0, 6.0, op="stat"),
        _span(2, 1, "rpc.tcp", 1.0, 20.0),  # runs long past the op
    ]
    record = _attribute(spans)
    _assert_exact(record)
    assert record.total_ms == 6.0
    assert record.stages["tcp_transit"] == pytest.approx(5.0)  # [1,6)
    assert record.stages["client_queue"] == pytest.approx(1.0)


def test_zero_duration_points_do_not_contribute():
    spans = [
        _span(1, None, "client.op", 0.0, 4.0, op="stat"),
        _span(2, 1, "rpc.tcp", 0.0, 4.0),
        _span(3, 2, "tcp.send", 0.0, 0.0),      # point
        _span(4, 2, "nn.cache_hit", 2.0, 2.0),  # point
    ]
    record = _attribute(spans)
    _assert_exact(record)
    assert record.stages["tcp_transit"] == pytest.approx(4.0)
    assert all(segment.kind != "tcp.send" for segment in record.segments)


def test_open_children_are_ignored():
    open_child = Span(2, 1, "rpc.tcp", "a", 1.0, {})
    spans = [
        _span(1, None, "client.op", 0.0, 4.0, op="stat"),
        open_child,
    ]
    record = _attribute(spans)
    _assert_exact(record)
    assert record.stages["client_queue"] == pytest.approx(4.0)


def test_unknown_kind_lands_in_other():
    spans = [
        _span(1, None, "client.op", 0.0, 4.0, op="stat"),
        _span(2, 1, "mystery.kind", 1.0, 3.0),
    ]
    record = _attribute(spans)
    _assert_exact(record)
    assert record.stages["other"] == pytest.approx(2.0)


def test_analyze_spans_skips_open_roots_and_counts_them():
    open_root = Span(1, None, "client.op", "a", 0.0, {"op": "stat"})
    closed = _span(2, None, "client.op", 0.0, 2.0, op="stat", ok=True)
    profile = analyze_spans([open_root, closed])
    assert len(profile.ops) == 1
    assert profile.open_roots == 1
    assert profile.ops[0].span_id == 2


def test_aggregates_and_persistence_round_trip(tmp_path):
    spans = [
        _span(1, None, "client.op", 0.0, 10.0, op="stat", ok=True, via="tcp"),
        _span(2, 1, "rpc.tcp", 1.0, 9.0),
        _span(3, None, "client.op", 10.0, 14.0, op="ls", ok=True, via="http"),
        _span(4, 3, "rpc.http", 10.0, 14.0),
    ]
    profile = analyze_spans(spans)
    assert set(profile.by_op_type()) == {"stat", "ls"}
    shares = profile.stage_shares("stat")
    assert shares["tcp_transit"] == pytest.approx(0.8)
    assert sum(shares.values()) == pytest.approx(1.0)
    top = profile.top_contributors(2)
    assert top[0][:2] == ("stat", "tcp_transit")
    cdf = profile.stage_cdf("tcp_transit", op="stat")
    assert cdf[-1] == (8.0, 1.0)

    path = tmp_path / "profile.json"
    profile.save(str(path))
    loaded = profile.load(str(path))
    assert len(loaded.ops) == 2
    assert loaded.ops[0].stages["tcp_transit"] == pytest.approx(8.0)
    assert loaded.ops[0].total_ms == pytest.approx(10.0)
