"""Exporters: Chrome trace-event JSON, folded stacks, spans JSONL."""

import json
import math

import pytest

from repro.profile import (
    analyze_spans,
    chrome_trace_events,
    dump_spans,
    folded_stacks,
    load_spans,
    write_chrome_trace,
    write_folded_stacks,
)
from repro.trace.tracer import Span

pytestmark = pytest.mark.profile


def _span(span_id, parent_id, kind, start, end, actor="a", **attrs):
    span = Span(span_id, parent_id, kind, actor, start, attrs)
    span.end_ms = end
    return span


def _sample_spans():
    return [
        _span(1, None, "client.op", 0.0, 10.0, actor="client1",
              op="stat", ok=True, via="tcp"),
        _span(2, 1, "rpc.tcp", 1.0, 9.0, actor="client1"),
        _span(3, 2, "nn.handle", 2.0, 8.0, actor="d0#1"),
        _span(4, 3, "txn", 3.0, 7.0, actor="<Txn 1>"),
    ]


def test_chrome_events_are_finite_and_non_negative():
    spans = _sample_spans() + [
        Span(5, 1, "rpc.http", "client1", 9.5, {}),  # open — skipped
    ]
    events = chrome_trace_events(spans)
    complete = [event for event in events if event["ph"] == "X"]
    assert len(complete) == 4  # the open span is skipped
    for event in complete:
        assert math.isfinite(event["ts"]) and event["ts"] >= 0
        assert math.isfinite(event["dur"]) and event["dur"] >= 0
        assert event["pid"] == 1
    # One named track (thread_name metadata event) per actor.
    names = {
        event["args"]["name"]
        for event in events if event["ph"] == "M"
    }
    assert names == {"client1", "d0#1", "<Txn 1>"}
    # Parent linkage is preserved in args for trace post-processing.
    nn = next(e for e in complete if e["name"] == "nn.handle")
    assert nn["args"]["parent_id"] == 2
    assert nn["cat"] == "nn"


def test_chrome_events_sanitize_exotic_attrs():
    spans = [
        _span(1, None, "client.op", 0.0, 1.0,
              op="stat", weird=object(), nan=float("nan"),
              nested={"k": (1, 2)}),
    ]
    payload = json.dumps({"traceEvents": chrome_trace_events(spans)})
    parsed = json.loads(payload)
    args = parsed["traceEvents"][-1]["args"]
    assert isinstance(args["weird"], str)
    assert args["nan"] == "nan"
    assert args["nested"] == {"k": [1, 2]}


def test_write_chrome_trace_parses(tmp_path):
    path = write_chrome_trace(_sample_spans(), str(tmp_path / "t.json"))
    with open(path) as handle:
        data = json.load(handle)
    assert data["displayTimeUnit"] == "ms"
    assert any(event["ph"] == "X" for event in data["traceEvents"])


def test_folded_stacks_format_and_weights():
    profile = analyze_spans(_sample_spans())
    text = folded_stacks(profile)
    assert text.endswith("\n")
    lines = text.strip().splitlines()
    assert lines
    for line in lines:
        stack, weight = line.rsplit(" ", 1)
        assert int(weight) > 0
        assert stack.startswith("stat;client.op")
    # The deepest chain reflects the critical path.
    assert any("client.op;rpc.tcp;nn.handle;txn" in line for line in lines)
    by_stage = folded_stacks(profile, by="stage")
    assert any(line.rsplit(" ", 1)[0].endswith(";store")
               for line in by_stage.splitlines())
    with pytest.raises(ValueError):
        folded_stacks(profile, by="actor")


def test_write_folded_stacks(tmp_path):
    profile = analyze_spans(_sample_spans())
    path = write_folded_stacks(profile, str(tmp_path / "s.folded"))
    with open(path) as handle:
        assert handle.read() == folded_stacks(profile)


def test_spans_jsonl_round_trip(tmp_path):
    original = _sample_spans() + [
        Span(9, None, "client.op", "client2", 11.0, {"op": "ls"}),  # open
    ]
    path = dump_spans(original, str(tmp_path / "spans.jsonl"))
    loaded = load_spans(path)
    assert len(loaded) == len(original)
    by_id = {span.span_id: span for span in loaded}
    assert by_id[9].open
    assert by_id[3].parent_id == 2
    assert by_id[3].start_ms == 2.0 and by_id[3].end_ms == 8.0
    # Analysis on the reloaded spans matches analysis on the originals.
    before = analyze_spans(original)
    after = analyze_spans(loaded)
    assert [op.stages for op in after.ops] == [op.stages for op in before.ops]
    assert after.open_roots == before.open_roots == 1
