"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "create_file" in out
    assert "ok=True" in out
    assert "active NameNodes" in out


def test_experiments_command(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "fig11" in out
    assert "table3" in out


def test_table3_command(capsys):
    assert main(["table3", "--sizes", "64"]) == 0
    out = capsys.readouterr().out
    assert "HopsFS (ms)" in out
    assert "64" in out


def test_scaling_command(capsys):
    assert main(["scaling", "--clients", "8", "--ops", "12"]) == 0
    out = capsys.readouterr().out
    assert "lambda" in out
    assert "cephfs" in out


def test_spotify_defaults_parse():
    args = build_parser().parse_args(["spotify"])
    assert args.base == 3_000.0
    assert args.clients == 128


def test_replay_command(tmp_path, capsys):
    trace = tmp_path / "ops.trace"
    trace.write_text("0 mkdirs /t\n5 create /t/a\n9 stat /t/a\n")
    from repro.cli import main as cli_main

    assert cli_main(["replay", str(trace), "--clients", "2"]) == 0
    out = capsys.readouterr().out
    assert "replayed 3 ops (3 ok, 0 failed)" in out


def test_chaos_run_list(capsys):
    assert main(["chaos", "run", "--list"]) == 0
    out = capsys.readouterr().out
    assert "ack-loss" in out
    assert "tcp-sever" in out


def test_chaos_run_rejects_unknown_scenario(capsys):
    assert main(["chaos", "run", "meteor-strike"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_chaos_run_requires_a_scenario(capsys):
    assert main(["chaos", "run"]) == 2
    assert "need a scenario" in capsys.readouterr().err


@pytest.mark.slow
@pytest.mark.chaos
def test_chaos_run_from_json_file(tmp_path, capsys):
    import json

    path = tmp_path / "tiny.json"
    path.write_text(json.dumps({
        "name": "tiny",
        "faults": [
            {"kind": "tcp_delay", "at_ms": 300.0, "duration_ms": 400.0,
             "params": {"extra_ms": 5.0}},
        ],
    }))
    code = main([
        "chaos", "run", "--file", str(path),
        "--clients", "4", "--think", "10",
        "--window", "1200", "--drain", "1500",
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "tiny: PASS" in out
    assert "verifier: PASS" in out
    assert "fault log:" in out
