"""Pipelined chunk writes and the re-replication scanner."""

import pytest

from repro.chaos.engine import ChaosEngine, install_chaos
from repro.chaos.scenario import FaultSpec, Scenario
from repro.datanode import DataNodeFleet, DataNodeFleetConfig
from repro.sim import Environment
from repro.trace import install_tracer

pytestmark = pytest.mark.datanode

CONFIG = DataNodeFleetConfig(count=9, racks=3, publish_interval_ms=0.0)


def drive(env, generator):
    done = env.process(generator)
    env.run(until=done)
    return done.value


def test_pipeline_writes_replication_factor_replicas():
    env = Environment()
    fleet = DataNodeFleet(env, CONFIG, seed=0)
    fleet.start()
    stored = drive(env, fleet.client_write(1, actor="c0"))
    assert len(stored) == 3
    assert fleet.blocks[1] == set(stored)
    assert {fleet.node(dn).rack for dn in stored} == {"rack0", "rack1", "rack2"}
    for dn in stored:
        assert 1 in fleet.node(dn).replicas


def test_pipeline_breaks_at_dead_node():
    """The forward chain stops at the first dead node: upstream
    replicas are durable, downstream ones never happen."""
    env = Environment()
    fleet = DataNodeFleet(env, CONFIG, seed=0)
    # Not started: placement over tracker view (all live), no scans.
    targets = fleet.placement(5)
    fleet.node(targets[1]).alive = False  # dies without the tracker knowing
    stored = drive(env, fleet.client_write(5, actor="c0"))
    assert stored == targets[:1]
    assert fleet.blocks[5] == {targets[0]}


def test_pipeline_emits_stage_spans():
    env = Environment()
    tracer = install_tracer(env)
    fleet = DataNodeFleet(env, CONFIG, seed=0)
    drive(env, fleet.client_write(2, actor="c0"))
    kinds = [span.kind for span in tracer.spans.values()]
    assert kinds.count("dn.pipeline") == 1
    assert kinds.count("dn.xfer") == 3
    assert kinds.count("dn.disk") == 3
    assert kinds.count("dn.ack") == 3
    spans = list(tracer.spans.values())
    root = next(s for s in spans if s.kind == "dn.pipeline")
    children = [s for s in spans if s.parent_id == root.span_id]
    assert len(children) == 9


def test_disk_slow_fault_slows_matching_rack_only():
    def timed_write(rack_scope):
        env = Environment()
        fleet = DataNodeFleet(env, CONFIG, seed=0)
        engine = install_chaos(env, seed=0, fleet=fleet)
        engine.start(Scenario(
            name="slow",
            faults=(
                FaultSpec("disk_slow", at_ms=0.0, duration_ms=100_000.0,
                          params={"factor": 50.0, "rack": rack_scope}),
            ),
        ))
        env.run(until=1.0)  # let the activation edge fire
        start = env.now
        drive(env, fleet.client_write(3, actor="c0"))
        return env.now - start

    # Block 3's pipeline spans all three racks, so slowing rack0
    # drags it; slowing a rack that doesn't exist changes nothing.
    assert timed_write("rack0") > 2.0 * timed_write("rack9")


def test_scanner_records_repair_timeline():
    env = Environment()
    fleet = DataNodeFleet(env, CONFIG, seed=0)
    fleet.start()
    drive(env, fleet.client_write(11, actor="c0"))
    victim = sorted(fleet.blocks[11])[0]
    fleet.kill(victim)
    env.run(until=8_000.0)
    records = [r for r in fleet.scanner.records if r.block_id == 11]
    assert len(records) == 1
    record = records[0]
    assert record.restored_ms >= record.detected_ms
    assert record.target not in {victim}
    live = set(fleet.tracker.live())
    assert len(fleet.blocks[11] & live) == 3


def test_same_seed_fleet_runs_are_identical():
    """Same seed → same kills, same repair timeline, same event hash."""

    def run_once():
        env = Environment()
        tracer = install_tracer(env)
        fleet = DataNodeFleet(env, CONFIG, seed=7)
        fleet.start()
        engine = ChaosEngine(env, seed=7, fleet=fleet)
        engine.start(Scenario(
            name="kills",
            faults=(
                FaultSpec("datanode_kill", at_ms=1_000.0, duration_ms=900.0,
                          params={"count": 2, "interval_ms": 400.0}),
            ),
        ))

        def workload(env):
            for block in range(40):
                yield from fleet.client_write(block, actor="c0")
                yield env.timeout(25.0)

        done = env.process(workload(env))
        env.run(until=done)
        env.run(until=12_000.0)
        repairs = [
            (r.block_id, r.detected_ms, r.restored_ms, r.source, r.target)
            for r in fleet.scanner.records
        ]
        return tracer.event_hash(), engine.log_hash(), repairs

    first = run_once()
    second = run_once()
    assert first == second
    assert first[2]  # the scenario really exercised re-replication
