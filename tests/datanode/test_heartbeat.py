"""Heartbeat liveness edge cases: flaps, races, and total loss."""

import pytest

from repro.chaos.scenario import FaultSpec, Scenario
from repro.chaos.engine import ChaosEngine
from repro.chaos.verifier import ChaosVerifier
from repro.datanode import DataNodeFleet, DataNodeFleetConfig
from repro.sim import Environment

pytestmark = pytest.mark.datanode

SMALL = DataNodeFleetConfig(count=6, racks=3, publish_interval_ms=0.0)


def make_fleet(env, config=SMALL, start=True):
    fleet = DataNodeFleet(env, config, seed=0)
    if start:
        fleet.start()
    return fleet


def test_missed_beats_declare_node_dead():
    env = Environment()
    fleet = make_fleet(env)
    fleet.kill("dn0")
    # Cutoff is 3 × 500 ms; by 2.5 s the scan must have fired.
    env.run(until=2_500.0)
    assert "dn0" in fleet.tracker.dead()
    assert "dn0" not in fleet.tracker.live()
    assert "dn0" not in fleet.placement(123)


def test_flapping_node_inside_one_window_is_never_dead():
    """dead→alive inside the miss window: the restart resumes beats
    before the cutoff, so the tracker never observes a death."""
    env = Environment()
    fleet = make_fleet(env)

    def flap(env):
        yield env.timeout(1_000.0)
        fleet.kill("dn1")
        yield env.timeout(900.0)  # < 1500 ms cutoff
        fleet.restart("dn1")

    env.process(flap(env))
    env.run(until=5_000.0)
    assert fleet.tracker.deaths == 0
    assert "dn1" in fleet.tracker.live()


def test_flapped_node_past_cutoff_dies_then_revives():
    env = Environment()
    fleet = make_fleet(env)

    def flap(env):
        yield env.timeout(1_000.0)
        fleet.kill("dn2")
        yield env.timeout(2_200.0)  # > cutoff: scan declares it dead
        fleet.restart("dn2")

    env.process(flap(env))
    env.run(until=6_000.0)
    assert fleet.tracker.deaths == 1
    assert fleet.tracker.revivals == 1
    assert "dn2" in fleet.tracker.live()


def test_heartbeat_racing_its_own_kill_fault():
    """A kill landing exactly on a beat tick must still win: the kill
    fires via the chaos engine at t=2400 ms — in between two beats —
    and whichever intra-tick order the scheduler picks, the node ends
    up dead at the tracker and excluded from placement."""
    env = Environment()
    fleet = make_fleet(env)
    engine = ChaosEngine(env, seed=0, fleet=fleet)
    scenario = Scenario(
        name="race",
        faults=(
            # interval 500 ms from activation at 1900 ms → kill lands
            # at 2400 ms, heartbeats tick at 2000/2500/...
            FaultSpec("datanode_kill", at_ms=1_900.0, duration_ms=600.0,
                      params={"count": 1, "interval_ms": 500.0}),
        ),
    )
    engine.start(scenario)
    env.run(until=6_000.0)
    killed = [dn.id for dn in fleet.nodes if not dn.alive]
    assert len(killed) == 1
    assert killed[0] in fleet.tracker.dead()
    assert killed[0] not in fleet.placement(7)


def test_all_replicas_lost_is_a_verifier_fail():
    """A block whose every replica died must surface as a hard FAIL,
    never as a silent empty placement."""
    env = Environment()
    fleet = make_fleet(env)
    fleet.repair_enabled = False  # nothing to copy from anyway
    fleet.register_replicas(77, ["dn0", "dn1"])
    fleet.kill("dn0")
    fleet.kill("dn1")
    env.run(until=3_000.0)
    assert 77 in fleet.scanner.lost
    report = ChaosVerifier(fleet=fleet).verify()
    assert not report.passed
    assert report.lost_blocks == [77]
    assert any("lost" in failure for failure in report.failures)


def test_verifier_passes_once_scanner_repairs_deficit():
    env = Environment()
    fleet = make_fleet(env)
    for block in range(8):
        fleet.register_replicas(block, fleet.placement(block))
    fleet.kill("dn3")
    env.run(until=6_000.0)
    # Every block dn3 held has been re-replicated to a live node.
    live = set(fleet.tracker.live())
    for block, holders in fleet.blocks.items():
        assert len(holders & live) >= 3
    report = ChaosVerifier(fleet=fleet).verify()
    assert report.passed


def test_dead_repair_daemon_leaves_standing_deficit():
    env = Environment()
    fleet = make_fleet(env)
    fleet.repair_enabled = False
    for block in range(8):
        fleet.register_replicas(block, fleet.placement(block))
    fleet.kill("dn3")
    env.run(until=6_000.0)
    report = ChaosVerifier(fleet=fleet).verify()
    assert not report.passed
    assert any("under-replicated" in failure for failure in report.failures)
