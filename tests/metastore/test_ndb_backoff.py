"""Transaction-retry backoff: full jitter, capped, seed-deterministic."""

import random

import pytest

from repro.metastore import NdbConfig, NdbStore
from repro.rpc.retry import RetryPolicy
from repro.sim import Environment

pytestmark = pytest.mark.chaos


def test_full_jitter_delay_is_capped():
    policy = RetryPolicy(base_ms=2.0, factor=2.0, max_ms=64.0)
    rng = random.Random(0)
    for attempt in range(1, 40):
        for _ in range(20):
            assert 0.0 <= policy.full_jitter_delay(attempt, rng) <= 64.0
    # Far past the cap the exponential term would be astronomically
    # large; the bound must still be max_ms, not overflow territory.
    assert policy.full_jitter_delay(1000, rng) <= 64.0


def test_full_jitter_delay_upper_bound_tracks_exponential_below_cap():
    policy = RetryPolicy(base_ms=2.0, factor=2.0, max_ms=64.0)
    rng = random.Random(1)
    for attempt, bound in ((1, 2.0), (2, 4.0), (3, 8.0), (6, 64.0), (7, 64.0)):
        samples = [policy.full_jitter_delay(attempt, rng) for _ in range(200)]
        assert max(samples) <= bound
        # Full jitter spans the whole interval, not a centred band.
        assert min(samples) < 0.2 * bound


def test_full_jitter_delay_is_one_based():
    policy = RetryPolicy()
    with pytest.raises(ValueError):
        policy.full_jitter_delay(0, random.Random(0))


def test_full_jitter_delay_is_seed_deterministic():
    policy = RetryPolicy(base_ms=2.0, max_ms=64.0)
    a = [policy.full_jitter_delay(i, random.Random(7)) for i in range(1, 9)]
    b = [policy.full_jitter_delay(i, random.Random(7)) for i in range(1, 9)]
    assert a == b


class RecordingRng(random.Random):
    """Records every uniform() bound run_transaction asks for."""

    def __init__(self):
        super().__init__(0)
        self.uniform_calls = []

    def uniform(self, a, b):
        self.uniform_calls.append((a, b))
        return super().uniform(a, b)


def test_run_transaction_backoff_uses_capped_full_jitter():
    env = Environment()
    store = NdbStore(env, NdbConfig(
        shards=2, workers_per_shard=2,
        read_service_ms=1.0, write_service_ms=2.0, commit_service_ms=1.0,
        rtt_ms=0.0, lock_timeout_ms=20.0,
    ))
    rng = RecordingRng()
    store._retry_rng = rng
    store.load_bulk({"row": 0})

    def holder(txn):
        yield from txn.read("row")
        yield env.timeout(60.0)  # a few lock-timeout windows long
        yield from txn.commit()

    def contender(env):
        yield env.timeout(1.0)
        yield from store.run_transaction(
            body=lambda txn: txn.write("row", 1),
            retries=6, backoff_ms=2.0, backoff_cap_ms=16.0,
        )

    hold_txn = store.begin()
    done_holder = env.process(holder(hold_txn))
    done = env.process(contender(env))
    env.run(until=500.0)
    assert done.triggered and done_holder.triggered

    # Every abort drew uniform(0, min(2 * 2^(attempt-1), 16)).
    assert rng.uniform_calls, "no abort ever happened"
    expected = [2.0, 4.0, 8.0, 16.0, 16.0, 16.0]
    for index, (low, high) in enumerate(rng.uniform_calls):
        assert low == 0.0
        assert high == pytest.approx(expected[index])
        assert high <= 16.0
