"""Unit tests for the shared/exclusive lock manager."""

import pytest

from repro.metastore.errors import LockTimeout
from repro.metastore.locks import LockManager, LockMode
from repro.sim import Environment


def run(env, *procs):
    for proc in procs:
        env.process(proc)
    env.run()


def test_shared_locks_coexist():
    env = Environment()
    locks = LockManager(env)
    granted = []

    def reader(name):
        yield from locks.acquire(name, "k", LockMode.SHARED)
        granted.append((name, env.now))
        yield env.timeout(5)
        locks.release(name, "k")

    run(env, reader("a"), reader("b"))
    assert granted == [("a", 0), ("b", 0)]


def test_exclusive_waits_for_shared():
    env = Environment()
    locks = LockManager(env)
    log = []

    def reader(env):
        yield from locks.acquire("r", "k", LockMode.SHARED)
        yield env.timeout(10)
        locks.release("r", "k")

    def writer(env):
        yield env.timeout(1)
        yield from locks.acquire("w", "k", LockMode.EXCLUSIVE)
        log.append(env.now)
        locks.release("w", "k")

    run(env, reader(env), writer(env))
    assert log == [10]


def test_shared_waits_for_exclusive():
    env = Environment()
    locks = LockManager(env)
    log = []

    def writer(env):
        yield from locks.acquire("w", "k", LockMode.EXCLUSIVE)
        yield env.timeout(7)
        locks.release("w", "k")

    def reader(env):
        yield env.timeout(1)
        yield from locks.acquire("r", "k", LockMode.SHARED)
        log.append(env.now)
        locks.release("r", "k")

    run(env, writer(env), reader(env))
    assert log == [7]


def test_reacquire_is_noop():
    env = Environment()
    locks = LockManager(env)

    def proc(env):
        yield from locks.acquire("a", "k", LockMode.EXCLUSIVE)
        yield from locks.acquire("a", "k", LockMode.SHARED)
        yield from locks.acquire("a", "k", LockMode.EXCLUSIVE)
        assert locks.holders("k") == {"a": LockMode.EXCLUSIVE}
        locks.release("a", "k")

    run(env, proc(env))


def test_lone_shared_holder_upgrades():
    env = Environment()
    locks = LockManager(env)

    def proc(env):
        yield from locks.acquire("a", "k", LockMode.SHARED)
        yield from locks.acquire("a", "k", LockMode.EXCLUSIVE)
        assert locks.holders("k") == {"a": LockMode.EXCLUSIVE}
        locks.release("a", "k")

    run(env, proc(env))


def test_fifo_prevents_writer_starvation():
    env = Environment()
    locks = LockManager(env)
    order = []

    def first_reader(env):
        yield from locks.acquire("r1", "k", LockMode.SHARED)
        yield env.timeout(10)
        locks.release("r1", "k")

    def writer(env):
        yield env.timeout(1)
        yield from locks.acquire("w", "k", LockMode.EXCLUSIVE)
        order.append(("w", env.now))
        yield env.timeout(5)
        locks.release("w", "k")

    def late_reader(env):
        yield env.timeout(2)
        yield from locks.acquire("r2", "k", LockMode.SHARED)
        order.append(("r2", env.now))
        locks.release("r2", "k")

    run(env, first_reader(env), writer(env), late_reader(env))
    # The late reader must NOT jump ahead of the queued writer.
    assert order == [("w", 10), ("r2", 15)]


def test_batched_shared_grants():
    env = Environment()
    locks = LockManager(env)
    grants = []

    def writer(env):
        yield from locks.acquire("w", "k", LockMode.EXCLUSIVE)
        yield env.timeout(5)
        locks.release("w", "k")

    def reader(name):
        yield env.timeout(1)
        yield from locks.acquire(name, "k", LockMode.SHARED)
        grants.append((name, env.now))
        locks.release(name, "k")

    run(env, writer(env), reader("r1"), reader("r2"))
    assert grants == [("r1", 5), ("r2", 5)]


def test_lock_timeout():
    env = Environment()
    locks = LockManager(env, default_timeout_ms=3)
    failures = []

    def holder(env):
        yield from locks.acquire("h", "k", LockMode.EXCLUSIVE)
        yield env.timeout(100)
        locks.release("h", "k")

    def waiter(env):
        yield env.timeout(1)
        try:
            yield from locks.acquire("w", "k", LockMode.EXCLUSIVE)
        except LockTimeout:
            failures.append(env.now)

    run(env, holder(env), waiter(env))
    assert failures == [4]
    assert locks.queue_length("k") == 0


def test_release_unheld_is_noop():
    env = Environment()
    locks = LockManager(env)
    locks.release("ghost", "k")
    assert locks.holders("k") == {}


def test_lock_state_cleaned_up():
    env = Environment()
    locks = LockManager(env)

    def proc(env):
        yield from locks.acquire("a", "k", LockMode.EXCLUSIVE)
        locks.release("a", "k")

    run(env, proc(env))
    assert locks._locks == {}
