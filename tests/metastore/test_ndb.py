"""Unit tests for the NDB-like transactional store."""

import pytest

from repro.metastore import NdbConfig, NdbStore, TransactionAborted
from repro.metastore.errors import LockTimeout
from repro.sim import Environment


def make_store(env, **overrides):
    defaults = dict(
        shards=2,
        workers_per_shard=2,
        read_service_ms=1.0,
        write_service_ms=2.0,
        commit_service_ms=1.0,
        rtt_ms=0.0,
        lock_timeout_ms=100.0,
    )
    defaults.update(overrides)
    return NdbStore(env, NdbConfig(**defaults))


def run(env, *procs):
    for proc in procs:
        env.process(proc)
    env.run()


def test_write_visible_after_commit():
    env = Environment()
    store = make_store(env)
    seen = []

    def writer(env):
        txn = store.begin()
        yield from txn.write(("k", 1), "v1")
        assert store.peek(("k", 1)) is None  # not yet committed
        yield from txn.commit()
        seen.append(store.peek(("k", 1)))

    run(env, writer(env))
    assert seen == ["v1"]


def test_abort_discards_staged_writes():
    env = Environment()
    store = make_store(env)

    def writer(env):
        txn = store.begin()
        yield from txn.write(("k", 1), "v1")
        txn.abort()

    run(env, writer(env))
    assert store.peek(("k", 1)) is None
    assert store.stats.aborts == 1


def test_read_own_writes():
    env = Environment()
    store = make_store(env)
    got = []

    def proc(env):
        txn = store.begin()
        yield from txn.write(("k", 1), "mine")
        value = yield from txn.read(("k", 1))
        got.append(value)
        yield from txn.commit()

    run(env, proc(env))
    assert got == ["mine"]


def test_read_costs_service_time():
    env = Environment()
    store = make_store(env, read_service_ms=3.0)
    store.load_bulk({("k", 1): "v"})
    times = []

    def proc(env):
        txn = store.begin()
        yield from txn.read(("k", 1))
        times.append(env.now)
        yield from txn.commit()

    run(env, proc(env))
    assert times == [3.0]


def test_worker_pool_queues_requests():
    env = Environment()
    store = make_store(env, shards=1, workers_per_shard=1, read_service_ms=5.0)
    store.load_bulk({("k", i): i for i in range(3)})
    finish = []

    def reader(env, i):
        txn = store.begin()
        yield from txn.read(("k", i))
        finish.append(env.now)
        yield from txn.commit()

    run(env, *(reader(env, i) for i in range(3)))
    # Single worker: reads serialize at 5 ms each.
    assert finish == [5.0, 10.0, 15.0]


def test_concurrent_writers_serialize_on_same_key():
    env = Environment()
    store = make_store(env)
    order = []

    def writer(env, name, delay):
        yield env.timeout(delay)
        txn = store.begin()
        yield from txn.write(("k", 1), name)
        yield env.timeout(10)
        yield from txn.commit()
        order.append(name)

    run(env, writer(env, "a", 0), writer(env, "b", 1))
    assert order == ["a", "b"]
    assert store.peek(("k", 1)) == "b"


def test_lock_timeout_aborts_txn():
    env = Environment()
    store = make_store(env, lock_timeout_ms=5.0)
    failures = []

    def holder(env):
        txn = store.begin()
        yield from txn.write(("k", 1), "held")
        yield env.timeout(50)
        yield from txn.commit()

    def contender(env):
        yield env.timeout(1)
        txn = store.begin()
        try:
            yield from txn.write(("k", 1), "nope")
        except LockTimeout:
            failures.append(env.now)

    run(env, holder(env), contender(env))
    assert failures == [6.0]
    assert store.peek(("k", 1)) == "held"


def test_delete_removes_row_and_index():
    env = Environment()
    store = make_store(env)
    store.load_bulk({("dirent", 1, "a"): 2})

    def proc(env):
        txn = store.begin()
        yield from txn.delete(("dirent", 1, "a"))
        yield from txn.commit()

    run(env, proc(env))
    assert store.peek(("dirent", 1, "a")) is None
    assert store.keys_with_prefix(("dirent", 1)) == []


def test_scan_prefix_sees_committed_and_own_staged():
    env = Environment()
    store = make_store(env)
    store.load_bulk({("dirent", 1, "a"): 2, ("dirent", 1, "b"): 3, ("dirent", 9, "z"): 4})
    results = []

    def proc(env):
        txn = store.begin()
        yield from txn.write(("dirent", 1, "c"), 5)
        rows = yield from txn.scan_prefix(("dirent", 1))
        results.append(rows)
        yield from txn.commit()

    run(env, proc(env))
    assert results[0] == {
        ("dirent", 1, "a"): 2,
        ("dirent", 1, "b"): 3,
        ("dirent", 1, "c"): 5,
    }


def test_scan_excludes_staged_deletes():
    env = Environment()
    store = make_store(env)
    store.load_bulk({("dirent", 1, "a"): 2, ("dirent", 1, "b"): 3})
    results = []

    def proc(env):
        txn = store.begin()
        yield from txn.delete(("dirent", 1, "a"))
        rows = yield from txn.scan_prefix(("dirent", 1))
        results.append(rows)
        yield from txn.commit()

    run(env, proc(env))
    assert results[0] == {("dirent", 1, "b"): 3}


def test_read_many_batches():
    env = Environment()
    store = make_store(env, shards=1, workers_per_shard=1, read_service_ms=2.0,
                       batch_row_discount=0.5)
    store.load_bulk({("k", i): i for i in range(4)})
    times = []

    def proc(env):
        txn = store.begin()
        rows = yield from txn.read_many([("k", i) for i in range(4)])
        times.append((env.now, rows[("k", 2)]))
        yield from txn.commit()

    run(env, proc(env))
    # One batched access: 2.0 * (1 + 0.5*3) = 5.0 ms, not 8 ms.
    assert times == [(5.0, 2)]


def test_finished_txn_rejects_use():
    env = Environment()
    store = make_store(env)

    def proc(env):
        txn = store.begin()
        yield from txn.commit()
        with pytest.raises(TransactionAborted):
            yield from txn.read(("k", 1))

    run(env, proc(env))


def test_run_transaction_retries_after_timeout():
    env = Environment()
    store = make_store(env, lock_timeout_ms=5.0)
    outcome = []

    def holder(env):
        txn = store.begin()
        yield from txn.write(("k", 1), "first")
        yield env.timeout(20)
        yield from txn.commit()

    def body(txn):
        yield from txn.write(("k", 1), "second")

    def retrier(env):
        yield env.timeout(1)
        yield from store.run_transaction(body)
        outcome.append(env.now)

    run(env, holder(env), retrier(env))
    assert outcome and store.peek(("k", 1)) == "second"


def test_stats_accumulate():
    env = Environment()
    store = make_store(env)
    store.load_bulk({("k", 1): "v"})

    def proc(env):
        txn = store.begin()
        yield from txn.read(("k", 1))
        yield from txn.write(("k", 2), "w")
        yield from txn.commit()

    run(env, proc(env))
    assert store.stats.reads == 1
    assert store.stats.writes == 1
    assert store.stats.commits == 1
    assert store.stats.busy_ms > 0


def test_run_transaction_releases_locks_on_application_error():
    """Regression: an exception from the body (e.g. NotFound) must
    abort the transaction — leaked locks poison rows forever."""
    env = Environment()
    store = make_store(env)
    store.load_bulk({("k", 1): "v"})

    class AppError(Exception):
        pass

    def bad_body(txn):
        yield from txn.lock(("k", 1), exclusive=True)
        raise AppError("boom")

    def good_body(txn):
        yield from txn.write(("k", 1), "after")

    def proc(env):
        try:
            yield from store.run_transaction(bad_body)
        except AppError:
            pass
        # The lock must be free now: this completes without timeout.
        yield from store.run_transaction(good_body)

    run(env, proc(env))
    assert store.peek(("k", 1)) == "after"
    assert store.locks._locks == {}
