"""Unit tests for the LevelDB-like SSTable store."""

from repro.metastore import SSTableConfig, SSTableStore
from repro.sim import Environment


def run(env, *procs):
    for proc in procs:
        env.process(proc)
    env.run()


def small_config(**overrides):
    defaults = dict(
        io_threads=2,
        write_service_ms=1.0,
        read_service_ms=1.0,
        per_run_penalty_ms=0.5,
        flush_threshold=4,
        max_runs=2,
        flush_ms_per_1k_entries=1.0,
        compact_ms_per_1k_entries=1.0,
    )
    defaults.update(overrides)
    return SSTableConfig(**defaults)


def test_put_get_roundtrip():
    env = Environment()
    store = SSTableStore(env, small_config())
    got = []

    def proc(env):
        yield from store.put(("f", 1), "hello")
        value = yield from store.get(("f", 1))
        got.append(value)

    run(env, proc(env))
    assert got == ["hello"]


def test_get_missing_returns_none():
    env = Environment()
    store = SSTableStore(env, small_config())
    got = []

    def proc(env):
        value = yield from store.get(("missing",))
        got.append(value)

    run(env, proc(env))
    assert got == [None]


def test_delete_hides_value():
    env = Environment()
    store = SSTableStore(env, small_config())
    got = []

    def proc(env):
        yield from store.put(("f", 1), "v")
        yield from store.delete(("f", 1))
        value = yield from store.get(("f", 1))
        got.append(value)

    run(env, proc(env))
    assert got == [None]


def test_flush_creates_run():
    env = Environment()
    store = SSTableStore(env, small_config(flush_threshold=3))

    def proc(env):
        for i in range(3):
            yield from store.put(("f", i), i)
        yield env.timeout(50)  # let the background flush finish

    run(env, proc(env))
    assert store.run_count == 1
    assert store.stats.flushes == 1


def test_value_found_in_run_after_flush():
    env = Environment()
    store = SSTableStore(env, small_config(flush_threshold=2))
    got = []

    def proc(env):
        yield from store.put(("f", 0), "old")
        yield from store.put(("f", 1), "x")
        yield env.timeout(50)
        value = yield from store.get(("f", 0))
        got.append(value)

    run(env, proc(env))
    assert got == ["old"]
    assert store.stats.runs_searched >= 1


def test_memtable_shadows_runs():
    env = Environment()
    store = SSTableStore(env, small_config(flush_threshold=2))
    got = []

    def proc(env):
        yield from store.put(("f", 0), "v1")
        yield from store.put(("f", 1), "x")
        yield env.timeout(50)
        yield from store.put(("f", 0), "v2")
        value = yield from store.get(("f", 0))
        got.append(value)

    run(env, proc(env))
    assert got == ["v2"]


def test_compaction_bounds_runs():
    env = Environment()
    store = SSTableStore(env, small_config(flush_threshold=2, max_runs=2))

    def proc(env):
        for i in range(12):
            yield from store.put(("f", i), i)
            yield env.timeout(20)

    run(env, proc(env))
    assert store.run_count <= 3
    assert store.stats.compactions >= 1


def test_compaction_preserves_data():
    env = Environment()
    store = SSTableStore(env, small_config(flush_threshold=2, max_runs=1))
    got = []

    def proc(env):
        for i in range(8):
            yield from store.put(("f", i), i * 10)
            yield env.timeout(20)
        for i in range(8):
            value = yield from store.get(("f", i))
            got.append(value)

    run(env, proc(env))
    assert got == [i * 10 for i in range(8)]


def test_scan_prefix_merges_layers():
    env = Environment()
    store = SSTableStore(env, small_config(flush_threshold=2))
    results = []

    def proc(env):
        yield from store.put(("d", 1, "a"), 1)
        yield from store.put(("d", 1, "b"), 2)
        yield env.timeout(50)
        yield from store.put(("d", 1, "c"), 3)
        yield from store.put(("d", 2, "z"), 9)
        rows = yield from store.scan_prefix(("d", 1))
        results.append(rows)

    run(env, proc(env))
    assert results[0] == {("d", 1, "a"): 1, ("d", 1, "b"): 2, ("d", 1, "c"): 3}


def test_load_bulk_visible():
    env = Environment()
    store = SSTableStore(env, small_config())
    store.load_bulk({("f", 1): "seed"})
    got = []

    def proc(env):
        value = yield from store.get(("f", 1))
        got.append(value)

    run(env, proc(env))
    assert got == ["seed"]
