"""Tests for the ascii dashboard renderer."""

from repro.telemetry import MetricsRegistry, TimeSeries, render_dashboard
from repro.telemetry.dashboard import _interval_hit_rate


def _fleet_timeseries() -> TimeSeries:
    ts = TimeSeries()
    for index, t in enumerate((0.0, 250.0, 500.0)):
        ts.append(t, {
            'faas_instances_live{deployment="NameNode0"}': 1.0 + index,
            "fleet_actual_namenodes": 1.0 + index,
            "fleet_desired_namenodes": 2.0 + index,
            'rpc_requests_total{transport="tcp"}': 100.0 * index,
            'rpc_requests_total{transport="http"}': 10.0 * index,
            'cache_hits_total{deployment="NameNode0"}': 50.0 * index,
            'cache_misses_total{deployment="NameNode0"}': 5.0 * index,
            'cache_hit_ratio{deployment="NameNode0"}': 0.9,
            'cache_trie_size{deployment="NameNode0"}': 100.0,
            "custom_series": float(index),
        })
    return ts


def test_render_dashboard_sections():
    report = render_dashboard(_fleet_timeseries())
    assert "fleet (NameNodes per deployment)" in report
    assert "NameNode0" in report
    assert "rpc mix" in report
    assert "tcp req/interval" in report
    assert "http req/interval" in report
    assert "namespace cache" in report
    assert "hit%/intvl NameNode0" in report
    assert "trie entries (fleet)" in report
    # Unclaimed series fall into the generic tail.
    assert "custom_series" in report


def test_render_dashboard_empty():
    assert "no samples" in render_dashboard(TimeSeries())


def test_render_dashboard_counters_table():
    registry = MetricsRegistry()
    registry.inc("ops_total", 5.0, op="read")
    registry.observe("op_latency_ms", 3.0, op="read")
    report = render_dashboard(_fleet_timeseries(), registry)
    assert "end-of-run counters" in report
    assert "ops_total" in report
    assert "op_latency_ms (n, ≤p99)" in report


def test_interval_hit_rate_dips_on_miss_burst():
    ts = TimeSeries()
    # 100% hits, then an interval of all misses, then recovery.
    cumulative = [(0.0, 10.0, 0.0), (100.0, 20.0, 0.0),
                  (200.0, 20.0, 15.0), (300.0, 35.0, 15.0)]
    for t, hits, misses in cumulative:
        ts.append(t, {"cache_hits_total": hits, "cache_misses_total": misses})
    rates = _interval_hit_rate(ts, "cache_hits_total", "cache_misses_total")
    assert [rate for _, rate in rates] == [100.0, 100.0, 0.0, 100.0]


def test_interval_hit_rate_zero_lookups_is_zero():
    ts = TimeSeries()
    ts.append(0.0, {"cache_hits_total": 0.0, "cache_misses_total": 0.0})
    rates = _interval_hit_rate(ts, "cache_hits_total", "cache_misses_total")
    assert rates == [(0.0, 0.0)]


def test_spark_row_tolerates_nonfinite_samples():
    # A NaN/inf sample (empty-window ratio, divide-by-zero rate) must
    # not poison the row's min/max or crash the formatter.
    from repro.telemetry.dashboard import _spark_row
    nan, inf = float("nan"), float("inf")
    row = _spark_row("ratio", [(0.0, 1.0), (1.0, nan), (2.0, 3.0)], width=8)
    assert "·" in row
    assert "min 1" in row and "max 3" in row
    row = _spark_row("ratio", [(0.0, inf)], width=8)
    assert "min 0" in row and "last inf" in row


def test_spark_row_empty_points():
    from repro.telemetry.dashboard import _spark_row
    row = _spark_row("empty", [], width=8)
    assert "min 0" in row and "max 0" in row and "last 0" in row
