"""Series-key round-trips and dashboard label extraction edge cases.

``series_key`` / ``parse_series_key`` are the contract between the
registry, the sampler, the dashboards, and the tenant fairness math —
label values are user-influenced strings (paths, tenant names), so
the parser must survive separators and quoting inside values.
"""

import pytest

from repro.telemetry.dashboard import _label_of
from repro.telemetry.registry import label_key, parse_series_key, series_key

pytestmark = pytest.mark.telemetry


def _roundtrip(name, labels):
    key = series_key(name, label_key(labels))
    parsed_name, parsed = parse_series_key(key)
    assert parsed_name == name
    assert parsed == {str(k): str(v) for k, v in labels.items()}


def test_label_less_key_roundtrips():
    assert series_key("ops_total", ()) == "ops_total"
    assert parse_series_key("ops_total") == ("ops_total", {})


def test_single_and_multi_label_roundtrip():
    _roundtrip("ops_total", {"op": "read_file"})
    _roundtrip("tenant_latency_bucket",
               {"tenant": "acme", "le": "+Inf", "op": "stat"})


def test_labels_are_canonically_sorted():
    first = series_key("f", label_key({"b": "2", "a": "1"}))
    second = series_key("f", label_key({"a": "1", "b": "2"}))
    assert first == second == 'f{a="1",b="2"}'


def test_label_values_containing_separators():
    # '=' and ',' inside values must not split the label list.
    _roundtrip("f", {"expr": "a=b", "list": "x,y,z"})
    key = series_key("f", label_key({"expr": "a=b,c=d"}))
    assert parse_series_key(key)[1] == {"expr": "a=b,c=d"}


def test_label_values_containing_quotes_and_backslashes():
    _roundtrip("f", {"path": '/logs/"hot"'})
    _roundtrip("f", {"pattern": "a\\b"})
    _roundtrip("f", {"note": "line1\nline2"})


def test_non_string_label_values_stringify():
    key = series_key("f", label_key({"shard": 3, "le": 2.5}))
    assert parse_series_key(key)[1] == {"shard": "3", "le": "2.5"}


def test_label_of_prefers_label_and_falls_back_to_name():
    key = series_key("faas_instances_live",
                     label_key({"deployment": "d2"}))
    assert _label_of(key, "deployment") == "d2"
    # Missing label: the family name is the display fallback.
    assert _label_of(key, "tenant") == "faas_instances_live"
    assert _label_of("plain_series", "anything") == "plain_series"
