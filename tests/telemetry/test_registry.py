"""Unit tests for the metric primitives and the registry."""

import pytest

from repro.sim import Environment
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    label_key,
    parse_series_key,
    series_key,
)


def test_series_key_roundtrip():
    key = label_key({"deployment": "NameNode0", "transport": "tcp"})
    series = series_key("rpc_requests_total", key)
    assert series == 'rpc_requests_total{deployment="NameNode0",transport="tcp"}'
    name, labels = parse_series_key(series)
    assert name == "rpc_requests_total"
    assert labels == {"deployment": "NameNode0", "transport": "tcp"}


def test_series_key_no_labels():
    assert series_key("ops_total", label_key({})) == "ops_total"
    assert parse_series_key("ops_total") == ("ops_total", {})


def test_series_key_escapes_quotes():
    series = series_key("m", label_key({"path": 'a"b'}))
    _, labels = parse_series_key(series)
    assert labels == {"path": 'a"b'}


def test_label_key_is_order_insensitive():
    assert label_key({"a": 1, "b": 2}) == label_key({"b": 2, "a": 1})


def test_counter_inc_and_total():
    counter = Counter("ops_total")
    counter.inc(op="read")
    counter.inc(2.0, op="read")
    counter.inc(op="write")
    assert counter.value(op="read") == 3.0
    assert counter.value(op="missing") == 0.0
    assert counter.total() == 4.0


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("c").inc(-1.0)


def test_gauge_set_inc_dec():
    gauge = Gauge("depth")
    gauge.set(5.0, shard="0")
    gauge.inc(shard="0")
    gauge.dec(2.0, shard="0")
    assert gauge.value(shard="0") == 4.0


def test_gauge_callback_evaluated_at_collect():
    state = {"live": 1}
    gauge = Gauge("live")
    gauge.set_fn(lambda: state["live"], deployment="d0")
    assert gauge.value(deployment="d0") == 1.0
    state["live"] = 7
    assert gauge.collect() == {'live{deployment="d0"}': 7.0}


def test_histogram_buckets_and_quantile():
    histogram = Histogram("lat", buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 2.0, 2.0, 50.0, 1_000.0):
        histogram.observe(value, op="read")
    assert histogram.count(op="read") == 5
    assert histogram.sum(op="read") == pytest.approx(1_054.5)
    assert histogram.quantile(0.5, op="read") == 10.0
    assert histogram.quantile(1.0, op="read") == float("inf")
    assert histogram.quantile(0.0, op="read") == 1.0


def test_histogram_quantile_empty_and_validation():
    histogram = Histogram("lat", buckets=(1.0,))
    assert histogram.quantile(0.99) == 0.0
    with pytest.raises(ValueError):
        histogram.quantile(1.5)
    with pytest.raises(ValueError):
        Histogram("bad", buckets=())


def test_histogram_aggregate_quantile_merges_children():
    histogram = Histogram("lat", buckets=(1.0, 10.0))
    for _ in range(99):
        histogram.observe(0.5, op="read")
    histogram.observe(5.0, op="write")
    # Children merged: p50 in first bucket even though op=write alone
    # would land in the second.
    assert histogram.aggregate_quantile(0.5) == 1.0
    assert Histogram("empty", buckets=(1.0,)).aggregate_quantile(0.5) == 0.0


def test_registry_attaches_to_env():
    env = Environment()
    assert env.metrics is None
    registry = MetricsRegistry(env)
    assert env.metrics is registry
    registry.detach()
    assert env.metrics is None


def test_registry_helpers_create_lazily():
    registry = MetricsRegistry()
    registry.inc("ops_total", op="read")
    registry.set("depth", 3.0)
    registry.observe("lat", 5.0)
    assert sorted(registry.names()) == ["depth", "lat", "ops_total"]
    snapshot = registry.collect()
    assert snapshot['ops_total{op="read"}'] == 1.0
    assert snapshot["depth"] == 3.0
    assert snapshot["lat_count"] == 1.0
    assert snapshot["lat_sum"] == 5.0


def test_registry_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_prometheus_text_shape():
    registry = MetricsRegistry()
    registry.inc("ops_total", op="read")
    registry.observe("lat", 5.0)
    text = registry.prometheus_text()
    assert "# TYPE ops_total counter" in text
    assert "# TYPE lat histogram" in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    assert "lat_count 1" in text
    assert text.endswith("\n")
