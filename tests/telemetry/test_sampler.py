"""Unit tests for the sim-time sampler and its time-series."""

import pytest

from repro.sim import Environment
from repro.telemetry import MetricsRegistry, Sampler, TimeSeries


def test_timeseries_series_and_keys():
    ts = TimeSeries()
    ts.append(0.0, {"a": 1.0})
    ts.append(100.0, {"a": 2.0, "b": 5.0})
    assert ts.times() == [0.0, 100.0]
    assert ts.keys() == ["a", "b"]
    assert ts.series("a") == [(0.0, 1.0), (100.0, 2.0)]
    # Missing points fill with the default.
    assert ts.series("b") == [(0.0, 0.0), (100.0, 5.0)]
    assert ts.last("b") == 5.0
    assert ts.last("missing") == 0.0


def test_timeseries_deltas_first_interval_from_zero():
    ts = TimeSeries()
    ts.append(0.0, {"c": 3.0})
    ts.append(100.0, {"c": 10.0})
    ts.append(200.0, {"c": 10.0})
    assert ts.deltas("c") == [(0.0, 3.0), (100.0, 7.0), (200.0, 0.0)]


def test_timeseries_series_matching_groups_by_family():
    ts = TimeSeries()
    ts.append(0.0, {
        'rpc_requests_total{transport="tcp"}': 1.0,
        'rpc_requests_total{transport="http"}': 2.0,
        "other": 9.0,
    })
    matched = ts.series_matching("rpc_requests_total")
    assert sorted(matched) == [
        'rpc_requests_total{transport="http"}',
        'rpc_requests_total{transport="tcp"}',
    ]


def test_sampler_samples_on_sim_clock():
    env = Environment()
    registry = MetricsRegistry(env)
    registry.inc("ops_total")
    sampler = Sampler(env, registry, interval_ms=100.0).start()

    def workload(env):
        for _ in range(5):
            yield env.timeout(100.0)
            registry.inc("ops_total")

    done = env.process(workload(env))
    env.run(until=done)
    sampler.stop()
    times = sampler.timeseries.times()
    # Samples at t=0,100,...,500 plus the forced final snapshot.
    assert times == [0.0, 100.0, 200.0, 300.0, 400.0, 500.0, 500.0]
    assert sampler.timeseries.series("ops_total")[0] == (0.0, 1.0)
    assert sampler.timeseries.last("ops_total") == 6.0


def test_sampler_skips_duplicate_instants_unless_forced():
    env = Environment()
    registry = MetricsRegistry(env)
    sampler = Sampler(env, registry, interval_ms=100.0)
    sampler.sample_now()
    sampler.sample_now()
    assert len(sampler.timeseries) == 1
    sampler.sample_now(force=True)
    assert len(sampler.timeseries) == 2


def test_sampler_start_is_idempotent():
    env = Environment()
    sampler = Sampler(env, MetricsRegistry(env), interval_ms=50.0)
    assert sampler.start() is sampler.start()
    env.run(until=10.0)
    assert len(sampler.timeseries) == 1


def test_sampler_stop_halts_the_loop():
    env = Environment()
    registry = MetricsRegistry(env)
    sampler = Sampler(env, registry, interval_ms=100.0).start()
    env.run(until=250.0)
    sampler.stop(final_sample=False)
    count = len(sampler.timeseries)
    env.run(until=1_000.0)
    assert len(sampler.timeseries) == count
    assert not sampler.running


def test_sampler_rejects_bad_interval():
    env = Environment()
    with pytest.raises(ValueError):
        Sampler(env, MetricsRegistry(env), interval_ms=0.0)


# -- windowed-query helpers ------------------------------------------


def _ts(points):
    ts = TimeSeries()
    for t, values in points:
        ts.samples.append((t, values))
    return ts


def test_window_inclusive_on_both_bounds():
    ts = _ts([(0.0, {"a": 1.0}), (100.0, {"a": 2.0}), (200.0, {"a": 3.0})])
    win = ts.window(100.0, 200.0)
    assert [t for t, _ in win.samples] == [100.0, 200.0]


def test_window_empty_and_inverted():
    ts = _ts([(0.0, {"a": 1.0}), (100.0, {"a": 2.0})])
    assert ts.window(300.0, 400.0).samples == []
    assert ts.window(100.0, 0.0).samples == []
    assert TimeSeries().window(0.0, 1e9).samples == []


def test_window_single_sample_on_bound():
    ts = _ts([(50.0, {"a": 1.0})])
    assert len(ts.window(50.0, 50.0).samples) == 1


def test_last_k_trailing_points_and_default():
    ts = _ts([(0.0, {"a": 1.0}), (1.0, {}), (2.0, {"a": 3.0})])
    assert ts.last_k("a", 2) == [(1.0, 0.0), (2.0, 3.0)]
    assert ts.last_k("a", 2, default=9.0)[0] == (1.0, 9.0)
    # k beyond the series length yields everything; k <= 0 nothing.
    assert len(ts.last_k("a", 100)) == 3
    assert ts.last_k("a", 0) == []
    assert ts.last_k("a", -3) == []


def test_rate_over_window_basic():
    ts = _ts([(0.0, {"c": 0.0}), (500.0, {"c": 5.0}), (1000.0, {"c": 20.0})])
    # 20 increase over 1s.
    assert ts.rate_over_window("c", 0.0, 1000.0) == pytest.approx(20.0)
    # Sub-window: 15 increase over 0.5s.
    assert ts.rate_over_window("c", 500.0, 1000.0) == pytest.approx(30.0)


def test_rate_over_window_degenerate():
    ts = _ts([(0.0, {"c": 1.0}), (1000.0, {"c": 2.0})])
    assert ts.rate_over_window("c", 0.0, 0.0) == 0.0      # single sample
    assert ts.rate_over_window("c", 5000.0, 9000.0) == 0.0  # empty window
    assert TimeSeries().rate_over_window("c", 0.0, 1e9) == 0.0


def test_rate_over_window_clamps_counter_reset():
    ts = _ts([(0.0, {"c": 100.0}), (1000.0, {"c": 3.0})])
    assert ts.rate_over_window("c", 0.0, 1000.0) == 0.0
