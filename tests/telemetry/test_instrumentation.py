"""End-to-end telemetry: instrumented runs on the real system.

These exercise the full wiring — registry installed before the build,
callback gauges over live structures, counters on the hot paths — and
the guarantees the subsystem advertises: determinism with telemetry
on, zero footprint with it off.
"""

import itertools

import pytest

from repro.bench.harness import (
    build_hopsfs_cache,
    build_lambdafs,
    drive,
)
from repro.core import OpType
from repro.core import client as client_mod
from repro.core import messages
from repro.faas import platform as platform_mod
from repro.rpc import connections
from repro.namespace.cache import CacheStats
from repro.namespace.treegen import TreeSpec, generate_tree
from repro.sim import Environment
from repro.workloads import MicroBenchmark

pytestmark = pytest.mark.telemetry


def _reset_global_counters(monkeypatch):
    """Fresh-interpreter id numbering (they feed RNG stream names),
    as in tests/trace/test_determinism.py."""
    monkeypatch.setattr(client_mod.LambdaFSClient, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.TcpConnection, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.TcpServer, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.ClientVM, "_ids", itertools.count(1))
    monkeypatch.setattr(platform_mod.FunctionInstance, "_ids", itertools.count(1))
    monkeypatch.setattr(messages, "_request_ids", itertools.count(1))


def _run_micro(telemetry: bool, trace: bool = False, clients: int = 16,
               ops: int = 8, replacement: float = 0.05, seed: int = 0):
    env = Environment()
    tree = generate_tree(TreeSpec(seed=seed))
    handle = build_lambdafs(
        env, tree, deployments=4, seed=seed,
        client_overrides={"replacement_probability": replacement},
        trace=trace, telemetry=telemetry, telemetry_interval_ms=100.0,
    )
    client_objects = handle.make_clients(clients)
    drive(env, handle.prewarm())
    bench = MicroBenchmark(env, tree, seed=seed)
    drive(env, bench.run(client_objects, OpType.READ_FILE, ops, 4))
    if handle.telemetry is not None:
        handle.telemetry.stop()
    return handle


def test_instrumented_run_populates_key_families():
    handle = _run_micro(telemetry=True)
    registry = handle.telemetry.registry
    snapshot = registry.collect()
    # RPC fabric: both transports seen (first contact is HTTP, the
    # rest TCP).
    assert snapshot['rpc_requests_total{transport="http"}'] > 0
    assert snapshot['rpc_requests_total{transport="tcp"}'] > 0
    # FaaS platform: invocations and cold starts counted, live
    # instances visible through the callback gauges.
    assert registry.get("faas_invocations_total").total() > 0
    assert registry.get("faas_cold_starts_total").total() > 0
    live = registry.get("faas_instances_live")
    assert live is not None
    assert sum(live.collect().values()) == handle.active_servers()
    # Metastore: the namespace install + reads committed transactions.
    assert registry.get("store_txns_total").value(outcome="commit") > 0
    # Client ops and their latency distribution.
    assert registry.get("ops_total").total() > 0
    assert registry.get("op_latency_ms").aggregate_quantile(0.99) > 0


def test_cache_gauges_agree_with_cachestats():
    handle = _run_micro(telemetry=True)
    registry = handle.telemetry.registry
    stats = handle.system.aggregate_cache_stats()
    assert stats.lookups > 0
    hits_gauge = registry.get("cache_hits_total")
    assert sum(hits_gauge.collect().values()) == stats.hits
    # Satellite: MetricsRecorder reads the same single source of truth.
    assert handle.metrics.cache_hit_ratio() == pytest.approx(stats.hit_ratio)


def test_coordinator_counters_on_subtree_move():
    handle = _run_micro(telemetry=True)
    registry = handle.telemetry.registry
    env = handle.env
    client = handle.make_clients(1)[0]

    def move(env):
        yield from client.mv("/bench/d0_0", "/bench/d0_0_moved")

    drive(env, move(env))
    assert registry.get("coord_inv_rounds_total").total() > 0
    assert registry.get("coord_acks_total").total() > 0
    invalidations = registry.get("cache_invalidations_total")
    assert sum(invalidations.collect().values()) > 0


def test_telemetry_off_leaves_no_registry():
    handle = _run_micro(telemetry=False)
    assert handle.env.metrics is None
    assert handle.telemetry is None


def test_same_seed_runs_are_byte_identical(monkeypatch):
    def sample_stream():
        _reset_global_counters(monkeypatch)
        handle = _run_micro(telemetry=True, trace=True)
        ts = handle.telemetry.timeseries
        return ts.samples, handle.tracer.summary()["event_hash"]

    first_samples, first_hash = sample_stream()
    second_samples, second_hash = sample_stream()
    assert first_samples == second_samples
    assert first_hash == second_hash


def test_disabled_telemetry_preserves_event_hash(monkeypatch):
    # The instrumentation sites must be invisible when telemetry is
    # off: a traced run hashes identically to the pre-telemetry
    # behavior (and trivially to any other telemetry-off run).
    hashes = set()
    for _ in range(2):
        _reset_global_counters(monkeypatch)
        handle = _run_micro(telemetry=False, trace=True)
        hashes.add(handle.tracer.summary()["event_hash"])
    assert len(hashes) == 1


def test_shared_env_builders_share_one_bundle():
    env = Environment()
    tree = generate_tree(TreeSpec())
    first = build_lambdafs(env, tree, deployments=2, telemetry=True)
    second = build_hopsfs_cache(env, tree, telemetry=True)
    assert first.telemetry is second.telemetry
    assert env.metrics is first.telemetry.registry


def test_hopsfs_cache_stats_aggregation():
    env = Environment()
    tree = generate_tree(TreeSpec())
    handle = build_hopsfs_cache(env, tree, vcpus=64.0)
    client_objects = handle.make_clients(4)
    bench = MicroBenchmark(env, tree, seed=0)
    drive(env, bench.run(client_objects, OpType.READ_FILE, 8, 2))
    stats = handle.system.aggregate_cache_stats()
    assert isinstance(stats, CacheStats)
    assert stats.lookups > 0
    assert handle.metrics.cache_hit_ratio() == pytest.approx(stats.hit_ratio)


def test_scale_out_follows_replacement_probability():
    """Fig 6's premise: the deliberate HTTP signal drives the fleet.

    With shared TCP connections pre-established, a p=0 run never
    scales past the connected fleet while a high-p run provisions
    extra NameNodes from the replacement invocations alone.
    """
    fleets = {}
    for p in (0.0, 0.5):
        env = Environment()
        tree = generate_tree(TreeSpec())
        handle = build_lambdafs(
            env, tree, deployments=4,
            client_overrides={"replacement_probability": p},
            telemetry=True, telemetry_interval_ms=250.0,
        )
        client_objects = handle.make_clients(64)
        drive(env, handle.prewarm())
        bench = MicroBenchmark(env, tree, seed=0)
        # Prelude: establish the VM-shared connections cheaply.
        drive(env, bench.run(client_objects[:4], OpType.READ_FILE, 0, 16))
        connected = handle.active_servers()
        drive(env, bench.run(client_objects, OpType.READ_FILE, 96, 0))
        handle.telemetry.stop()
        fleets[p] = (connected, handle.active_servers())
    assert fleets[0.0][1] == fleets[0.0][0]  # no signal, no growth
    assert fleets[0.5][1] > fleets[0.5][0]   # signal scales out
    assert fleets[0.5][1] > fleets[0.0][1]
