"""Round-trip tests for the JSONL/CSV/Prometheus exporters."""

import csv
import io
import json

import pytest

from repro.telemetry import (
    MetricsRegistry,
    TimeSeries,
    parse_prometheus_text,
    read_jsonl,
    write_csv,
    write_jsonl,
    write_prometheus,
)


def _sample_timeseries() -> TimeSeries:
    ts = TimeSeries()
    ts.append(0.0, {"a": 1.0, 'b{k="v"}': 2.5})
    ts.append(250.0, {"a": 3.0})
    return ts


def test_jsonl_roundtrip(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    write_jsonl(_sample_timeseries(), str(path))
    ts = read_jsonl(str(path))
    assert ts.times() == [0.0, 250.0]
    assert ts.last("a") == 3.0
    assert ts.series('b{k="v"}')[0] == (0.0, 2.5)


def test_jsonl_lines_are_valid_json(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    write_jsonl(_sample_timeseries(), str(path))
    for line in path.read_text().splitlines():
        record = json.loads(line)
        assert "t_ms" in record and "values" in record


def test_read_jsonl_tolerates_junk_lines():
    buffer = io.StringIO('{"no_time": 1}\n\n{"t_ms": 5.0, "values": {"a": 1}}\n')
    ts = read_jsonl(buffer)
    assert ts.times() == [5.0]


def test_csv_header_and_missing_cells(tmp_path):
    path = tmp_path / "telemetry.csv"
    write_csv(_sample_timeseries(), str(path))
    rows = list(csv.reader(path.open()))
    assert rows[0] == ["t_ms", "a", 'b{k="v"}']
    # The second sample has no value for b: empty cell, not 0.
    assert rows[2][2] == ""
    assert float(rows[2][1]) == 3.0


def test_prometheus_roundtrip(tmp_path):
    registry = MetricsRegistry()
    registry.inc("ops_total", 3.0, op="read")
    registry.set("depth", 2.0)
    registry.observe("lat", 7.5)
    path = tmp_path / "telemetry.prom"
    write_prometheus(registry, str(path))
    samples = parse_prometheus_text(path.read_text())
    assert samples['ops_total{op="read"}'] == 3.0
    assert samples["depth"] == 2.0
    assert samples['lat_bucket{le="+Inf"}'] == 1.0
    assert samples["lat_count"] == 1.0
    assert samples["lat_sum"] == 7.5


def test_parse_prometheus_rejects_malformed_sample():
    with pytest.raises(ValueError):
        parse_prometheus_text("ops_total not-a-number\n")
