"""Unit tests for the trace replayer."""

import io

import pytest

from repro.core import LambdaFS, LambdaFSConfig
from repro.core.messages import OpType
from repro.faas import FaaSConfig
from repro.sim import Environment
from repro.workloads.replay import (
    TraceParseError,
    TraceReplayer,
    load_trace,
    parse_trace,
)

SAMPLE = """
# a tiny audit log
0    mkdirs /logs
10   create /logs/a
20   stat   /logs/a
30   mv     /logs/a /logs/b
40   read   /logs/b
50   delete /logs/b
"""


def test_parse_trace():
    records = parse_trace(SAMPLE.splitlines())
    assert len(records) == 6
    assert records[0].op is OpType.MKDIRS
    assert records[3].op is OpType.MV
    assert records[3].dst_path == "/logs/b"
    assert [r.time_ms for r in records] == [0, 10, 20, 30, 40, 50]


def test_parse_sorts_by_time():
    records = parse_trace(["50 stat /x", "10 stat /y"])
    assert [r.path for r in records] == ["/y", "/x"]


def test_parse_rmr_sets_recursive():
    (record,) = parse_trace(["5 rmr /tree"])
    assert record.op is OpType.DELETE
    assert record.recursive


def test_parse_errors():
    with pytest.raises(TraceParseError, match="expected"):
        parse_trace(["10 stat"])
    with pytest.raises(TraceParseError, match="timestamp"):
        parse_trace(["abc stat /x"])
    with pytest.raises(TraceParseError, match="unknown op"):
        parse_trace(["1 chown /x"])
    with pytest.raises(TraceParseError, match="dst"):
        parse_trace(["1 mv /x"])


def test_load_trace_from_file_object():
    records = load_trace(io.StringIO(SAMPLE))
    assert len(records) == 6


def test_replay_end_to_end():
    env = Environment()
    fs = LambdaFS(env, LambdaFSConfig(
        num_deployments=2,
        faas=FaaSConfig(
            cluster_vcpus=32.0, vcpus_per_instance=4.0,
            cold_start_min_ms=10.0, cold_start_max_ms=15.0, app_init_ms=2.0,
        ),
    ))
    fs.format()
    fs.start()
    clients = [fs.new_client(), fs.new_client()]
    records = parse_trace(SAMPLE.splitlines())
    replayer = TraceReplayer(env, records)
    box = {}

    def main(env):
        box["r"] = yield from replayer.run(clients)

    done = env.process(main(env))
    env.run(until=done)
    result = box["r"]
    assert result.issued == 6
    assert result.failed == 0
    assert result.succeeded == 6
    assert result.throughput > 0
    # The delete happened: /logs is empty again.

    def check(env):
        box["ls"] = yield from clients[0].ls("/logs")

    done = env.process(check(env))
    env.run(until=done)
    assert box["ls"].value == []


def test_replay_respects_offsets():
    """Operations are not issued before their recorded time."""
    env = Environment()

    class SlowlessClient:
        def __init__(self, env):
            self.env = env
            self.issue_times = []

        def execute(self, op, path, dst_path=None, recursive=False):
            self.issue_times.append(self.env.now)
            yield self.env.timeout(0.1)

            class R:
                ok = True
            return R()

    client = SlowlessClient(env)
    records = parse_trace(["100 stat /a", "300 stat /b"])
    box = {}

    def main(env):
        box["r"] = yield from TraceReplayer(env, records).run([client])

    done = env.process(main(env))
    env.run(until=done)
    assert client.issue_times == [100.0, 300.0]


def test_replay_requires_clients():
    env = Environment()
    replayer = TraceReplayer(env, [])

    def main(env):
        with pytest.raises(ValueError):
            yield from replayer.run([])

    done = env.process(main(env))
    env.run(until=done)
