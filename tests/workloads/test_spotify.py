"""Unit tests for the Spotify workload generator."""

import pytest

from repro.core.messages import OpType
from repro.namespace.treegen import TreeSpec, generate_tree
from repro.sim import Environment
from repro.workloads import SPOTIFY_MIX, SpotifyConfig, SpotifyWorkload


class CountingClient:
    """Records operations without any simulated cost."""

    def __init__(self, env):
        self.env = env
        self.ops = []

    def _record(self, op, path):
        self.ops.append((op, path))
        yield self.env.timeout(0.01)

        class R:  # minimal response
            ok = True
        return R()

    def create_file(self, path):
        return (yield from self._record(OpType.CREATE_FILE, path))

    def mkdirs(self, path):
        return (yield from self._record(OpType.MKDIRS, path))

    def read_file(self, path):
        return (yield from self._record(OpType.READ_FILE, path))

    def stat(self, path):
        return (yield from self._record(OpType.STAT, path))

    def ls(self, path):
        return (yield from self._record(OpType.LS, path))

    def delete(self, path, recursive=False):
        return (yield from self._record(OpType.DELETE, path))

    def mv(self, src, dst):
        return (yield from self._record(OpType.MV, src))


@pytest.fixture()
def tree():
    return generate_tree(TreeSpec(depth=2, dirs_per_dir=2, files_per_dir=4))


def test_mix_fractions_sum_to_one():
    assert sum(SPOTIFY_MIX.values()) == pytest.approx(1.0, abs=0.001)


def test_schedule_respects_spike_cap(tree):
    env = Environment()
    config = SpotifyConfig(base_throughput=1_000, duration_ms=150_000, seed=1)
    workload = SpotifyWorkload(env, config, tree)
    assert len(workload.schedule) == 10
    assert all(target <= 7_000 for target in workload.schedule)
    assert all(target >= 1_000 for target in workload.schedule)


def test_schedule_deterministic(tree):
    env = Environment()
    config = SpotifyConfig(base_throughput=500, seed=42)
    first = SpotifyWorkload(env, config, tree).schedule
    second = SpotifyWorkload(env, config, tree).schedule
    assert first == second


def test_target_at_boundaries(tree):
    env = Environment()
    config = SpotifyConfig(base_throughput=100, duration_ms=45_000,
                           interval_ms=15_000, seed=0)
    workload = SpotifyWorkload(env, config, tree)
    assert workload.target_at(0) == workload.schedule[0]
    assert workload.target_at(15_000) == workload.schedule[1]
    assert workload.target_at(10**9) == workload.schedule[-1]


def test_generated_ops_follow_mix(tree):
    env = Environment()
    config = SpotifyConfig(base_throughput=2_000, duration_ms=10_000,
                           interval_ms=5_000, seed=0)
    workload = SpotifyWorkload(env, config, tree)
    clients = [CountingClient(env) for _ in range(4)]
    done = env.process(workload.run(clients))
    env.run(until=done)
    all_ops = [op for client in clients for op, _path in client.ops]
    total = len(all_ops)
    assert total > 1_000
    read_fraction = sum(1 for op in all_ops if op is OpType.READ_FILE) / total
    assert 0.6 < read_fraction < 0.8  # Table 2: 69.22%
    stat_fraction = sum(1 for op in all_ops if op is OpType.STAT) / total
    assert 0.12 < stat_fraction < 0.23  # Table 2: 17%


def test_throughput_tracks_schedule(tree):
    env = Environment()
    config = SpotifyConfig(base_throughput=1_000, duration_ms=10_000,
                           interval_ms=5_000, seed=3)
    workload = SpotifyWorkload(env, config, tree)
    clients = [CountingClient(env) for _ in range(4)]
    done = env.process(workload.run(clients))
    env.run(until=done)
    # With free clients, issued ops match the scheduled totals.
    expected = sum(target * 5 for target in workload.schedule[:2])
    assert workload.issued == pytest.approx(expected, rel=0.1)


def test_rollover_when_clients_slow(tree):
    env = Environment()

    class SlowClient(CountingClient):
        def _record(self, op, path):
            self.ops.append((op, path))
            yield self.env.timeout(100.0)  # 10 ops/sec max

            class R:
                ok = True
            return R()

    config = SpotifyConfig(base_throughput=100, duration_ms=5_000,
                           interval_ms=5_000, seed=0)
    workload = SpotifyWorkload(env, config, tree)
    client = SlowClient(env)
    done = env.process(workload.run([client]))
    env.run(until=done)
    # A slow client cannot reach the target; it completes what it can.
    assert workload.completed < workload.schedule[0] * 5
    assert workload.completed > 0
