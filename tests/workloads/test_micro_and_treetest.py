"""Unit tests for the microbenchmark and tree-test drivers."""

import pytest

from repro.baselines import IndexFSCluster
from repro.core.messages import OpType
from repro.namespace.treegen import TreeSpec, generate_tree
from repro.sim import Environment
from repro.workloads import MicroBenchmark, TreeTest, TreeTestConfig


class StubClient:
    """Uniform-latency client for driver tests."""

    def __init__(self, env, latency_ms=1.0, fail_every=0):
        self.env = env
        self.latency_ms = latency_ms
        self.calls = []
        self.fail_every = fail_every

    def execute(self, op, target, dst_path=None, recursive=False):
        self.calls.append((op, target))
        yield self.env.timeout(self.latency_ms)

        class R:
            ok = self.fail_every == 0 or len(self.calls) % self.fail_every != 0
        return R()


def test_micro_throughput_math():
    env = Environment()
    tree = generate_tree(TreeSpec(depth=1, dirs_per_dir=2, files_per_dir=4))
    clients = [StubClient(env, latency_ms=2.0) for _ in range(4)]
    bench = MicroBenchmark(env, tree)
    box = {}

    def main(env):
        box["r"] = yield from bench.run(clients, OpType.READ_FILE, 10)

    done = env.process(main(env))
    env.run(until=done)
    result = box["r"]
    # 4 clients x 10 ops at 2 ms each, fully parallel: 20 ms total.
    assert result.duration_ms == pytest.approx(20.0)
    assert result.throughput == pytest.approx(40 * 1000 / 20.0)
    assert result.errors == 0


def test_micro_warmup_not_counted():
    env = Environment()
    tree = generate_tree(TreeSpec(depth=1, dirs_per_dir=2, files_per_dir=4))
    client = StubClient(env)
    bench = MicroBenchmark(env, tree)
    box = {}

    def main(env):
        box["r"] = yield from bench.run([client], OpType.STAT, 5, warmup_per_client=7)

    done = env.process(main(env))
    env.run(until=done)
    assert box["r"].total_ops == 5
    assert len(client.calls) == 12  # warmup + measured both executed


def test_micro_counts_errors():
    env = Environment()
    tree = generate_tree(TreeSpec(depth=1, dirs_per_dir=2, files_per_dir=4))
    client = StubClient(env, fail_every=2)
    bench = MicroBenchmark(env, tree)
    box = {}

    def main(env):
        box["r"] = yield from bench.run([client], OpType.LS, 10)

    done = env.process(main(env))
    env.run(until=done)
    assert box["r"].errors == 5


def test_micro_create_targets_are_unique():
    env = Environment()
    tree = generate_tree(TreeSpec(depth=1, dirs_per_dir=2, files_per_dir=4))
    clients = [StubClient(env) for _ in range(3)]
    bench = MicroBenchmark(env, tree)

    def main(env):
        yield from bench.run(clients, OpType.CREATE_FILE, 20)

    done = env.process(main(env))
    env.run(until=done)
    targets = [t for c in clients for _op, t in c.calls]
    assert len(targets) == len(set(targets))


def test_micro_rejects_unsupported_op():
    env = Environment()
    tree = generate_tree(TreeSpec())
    bench = MicroBenchmark(env, tree)
    with pytest.raises(ValueError):
        bench._target(OpType.MV, __import__("random").Random(0), 0, 0, "m")


def test_treetest_phases_and_counts():
    env = Environment()
    cluster = IndexFSCluster(env)
    clients = [cluster.new_client() for _ in range(2)]
    config = TreeTestConfig(writes_per_client=20, reads_per_client=15,
                            warmup_ops=2)
    box = {}

    def main(env):
        box["r"] = yield from TreeTest(env, config).run(clients)

    done = env.process(main(env))
    env.run(until=done)
    result = box["r"]
    assert result.write_ops == 40
    assert result.read_ops == 30
    assert result.write_throughput > 0
    assert result.read_throughput > 0
    assert result.aggregate_throughput > 0


def test_treetest_fixed_splits_total():
    env = Environment()
    cluster = IndexFSCluster(env)
    clients = [cluster.new_client() for _ in range(4)]
    config = TreeTestConfig(fixed_total_writes=80, fixed_total_reads=40,
                            warmup_ops=0)
    box = {}

    def main(env):
        box["r"] = yield from TreeTest(env, config).run(clients, fixed_size=True)

    done = env.process(main(env))
    env.run(until=done)
    assert box["r"].write_ops == 80
    assert box["r"].read_ops == 40
