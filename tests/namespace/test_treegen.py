"""Unit tests for tree generation."""

import random

from repro.namespace.treegen import TreeSpec, flat_directory, generate_tree


def test_generate_tree_counts():
    spec = TreeSpec(depth=2, dirs_per_dir=2, files_per_dir=3, root="/r")
    tree = generate_tree(spec)
    # Directories: root + 2 + 4 = 7; each of the 7 gets 3 files.
    assert len(tree.directories) == 7
    assert len(tree.files) == 21


def test_generate_tree_deterministic():
    spec = TreeSpec(depth=2, dirs_per_dir=2, files_per_dir=1)
    assert generate_tree(spec).files == generate_tree(spec).files


def test_all_files_under_root():
    tree = generate_tree(TreeSpec(root="/data"))
    assert all(path.startswith("/data/") for path in tree.files)


def test_sampling():
    tree = generate_tree(TreeSpec(depth=1, dirs_per_dir=2, files_per_dir=2))
    rng = random.Random(1)
    sample = tree.sample_files(rng, 10)
    assert len(sample) == 10
    assert set(sample) <= set(tree.files)


def test_flat_directory():
    tree = flat_directory("/big", 100)
    assert len(tree.files) == 100
    assert tree.directories == ["/big"]
    assert tree.files[0] == "/big/f0"
