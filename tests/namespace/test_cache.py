"""Unit tests for the trie metadata cache."""

import pytest

from repro.namespace import INode, MetadataCache


def make_inode(inode_id, name, is_dir=False, parent_id=1):
    return INode(id=inode_id, parent_id=parent_id, name=name, is_dir=is_dir)


def test_put_get_roundtrip():
    cache = MetadataCache()
    inode = make_inode(2, "a", is_dir=True)
    cache.put("/a", inode)
    assert cache.get("/a") == inode
    assert len(cache) == 1


def test_get_miss_counts():
    cache = MetadataCache()
    assert cache.get("/nothing") is None
    assert cache.stats.misses == 1
    assert cache.stats.hits == 0


def test_hit_ratio():
    cache = MetadataCache()
    cache.put("/a", make_inode(2, "a"))
    cache.get("/a")
    cache.get("/b")
    assert cache.stats.hit_ratio == 0.5


def test_get_path_prefix_partial():
    cache = MetadataCache()
    cache.put("/a", make_inode(2, "a", is_dir=True))
    cache.put("/a/b", make_inode(3, "b", is_dir=True, parent_id=2))
    found = cache.get_path_prefix("/a/b/c/d")
    assert set(found) == {"/a", "/a/b"}


def test_get_path_prefix_includes_root():
    cache = MetadataCache()
    cache.put("/", INode.root())
    found = cache.get_path_prefix("/x")
    assert set(found) == {"/"}


def test_invalidate_single():
    cache = MetadataCache()
    cache.put("/a", make_inode(2, "a", is_dir=True))
    cache.put("/a/b", make_inode(3, "b", parent_id=2))
    assert cache.invalidate("/a") == 1
    assert cache.get("/a") is None
    assert cache.get("/a/b") is not None
    assert len(cache) == 1


def test_invalidate_missing_is_zero():
    cache = MetadataCache()
    assert cache.invalidate("/nope") == 0


def test_invalidate_prefix_drops_subtree():
    cache = MetadataCache()
    cache.put("/foo", make_inode(2, "foo", is_dir=True))
    cache.put("/foo/x", make_inode(3, "x", parent_id=2))
    cache.put("/foo/y", make_inode(4, "y", parent_id=2))
    cache.put("/bar", make_inode(5, "bar", is_dir=True))
    removed = cache.invalidate_prefix("/foo")
    assert removed == 3
    assert len(cache) == 1
    assert cache.get("/bar") is not None


def test_invalidate_prefix_root_clears_all():
    cache = MetadataCache()
    cache.put("/a", make_inode(2, "a"))
    cache.put("/b", make_inode(3, "b"))
    assert cache.invalidate_prefix("/") == 2
    assert len(cache) == 0


def test_lru_eviction_at_capacity():
    cache = MetadataCache(capacity=2)
    cache.put("/a", make_inode(2, "a"))
    cache.put("/b", make_inode(3, "b"))
    cache.get("/a")  # /b becomes LRU
    cache.put("/c", make_inode(4, "c"))
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert "/b" not in cache
    assert "/a" in cache and "/c" in cache


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        MetadataCache(capacity=0)


def test_paths_iteration():
    cache = MetadataCache()
    cache.put("/a", make_inode(2, "a", is_dir=True))
    cache.put("/a/b", make_inode(3, "b", parent_id=2))
    assert sorted(cache.paths()) == ["/a", "/a/b"]


def test_clear():
    cache = MetadataCache()
    cache.put("/a", make_inode(2, "a"))
    cache.clear()
    assert len(cache) == 0
    assert cache.get("/a") is None


def test_put_refresh_does_not_grow():
    cache = MetadataCache()
    cache.put("/a", make_inode(2, "a"))
    cache.put("/a", make_inode(2, "a").with_updates(size=10))
    assert len(cache) == 1
    assert cache.get("/a").size == 10
