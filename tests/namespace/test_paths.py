"""Unit tests for path utilities."""

import pytest

from repro.namespace import paths


def test_normalize_collapses_slashes():
    assert paths.normalize("//a///b/") == "/a/b"


def test_normalize_root():
    assert paths.normalize("/") == "/"


def test_normalize_rejects_relative():
    with pytest.raises(ValueError):
        paths.normalize("a/b")


def test_normalize_rejects_dot_segments():
    with pytest.raises(ValueError):
        paths.normalize("/a/../b")
    with pytest.raises(ValueError):
        paths.normalize("/a/./b")


def test_components():
    assert paths.components("/a/b/c") == ["a", "b", "c"]
    assert paths.components("/") == []


def test_split():
    assert paths.split("/a/b") == ("/a", "b")
    assert paths.split("/a") == ("/", "a")


def test_split_root_rejected():
    with pytest.raises(ValueError):
        paths.split("/")


def test_parent_of():
    assert paths.parent_of("/x/y/z") == "/x/y"


def test_join():
    assert paths.join("/", "a") == "/a"
    assert paths.join("/a/b", "c") == "/a/b/c"


def test_join_rejects_bad_name():
    with pytest.raises(ValueError):
        paths.join("/a", "b/c")
    with pytest.raises(ValueError):
        paths.join("/a", "")


def test_is_descendant():
    assert paths.is_descendant("/a/b/c", "/a/b")
    assert paths.is_descendant("/a/b", "/a/b")
    assert not paths.is_descendant("/a/bc", "/a/b")
    assert paths.is_descendant("/anything", "/")
