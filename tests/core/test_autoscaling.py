"""Unit tests for the Figure 6 auto-scaling model."""

import pytest

from repro.core.autoscaling import AutoScalingModel, concurrency_bound, desired_scale


def test_desired_scale_formula():
    # DesiredScale = NumDeployments + TcpHttpReplace% * alpha
    assert desired_scale(10, 0.01, 1000) == 20


def test_desired_scale_minimum_is_deployments():
    assert desired_scale(5, 0.0, 100000) == 5


def test_desired_scale_validation():
    with pytest.raises(ValueError):
        desired_scale(0, 0.01, 10)
    with pytest.raises(ValueError):
        desired_scale(5, 1.5, 10)
    with pytest.raises(ValueError):
        desired_scale(5, 0.01, -1)


def test_concurrency_bound_takes_minimum():
    # 512 cpu / 6.25 = 81.92; 960 ram / 30 = 32 -> RAM binds.
    assert concurrency_bound(512, 6.25, 960, 30) == pytest.approx(32)


def test_concurrency_bound_cpu_binds():
    assert concurrency_bound(64, 8, 10_000, 1) == pytest.approx(8)


def test_concurrency_bound_validation():
    with pytest.raises(ValueError):
        concurrency_bound(512, 0, 960, 30)


def test_model_clips_at_resource_bound():
    model = AutoScalingModel(
        num_deployments=10,
        replace_probability=0.01,
        cluster_cpu=512,
        per_namenode_cpu=6.25,
        cluster_ram_gb=2_400,
        per_namenode_ram_gb=30,
    )
    # Unbounded formula gives 10 + 0.01*1e5 = 1010; RAM bound is 80.
    assert model.expected_namenodes(alpha=100_000) == pytest.approx(2_400 / 30)
    # Low load: formula below the bound.
    assert model.expected_namenodes(alpha=500) == pytest.approx(15)


def test_replacement_probability_scales_fleet():
    low = desired_scale(16, 0.001, 50_000)
    high = desired_scale(16, 0.01, 50_000)
    assert high > low
