"""Unit tests for the subtree protocol (Appendix D)."""

import pytest

from repro.core import LambdaFS, LambdaFSConfig
from repro.core.subtree import SubtreeConfig
from repro.faas import FaaSConfig
from repro.namespace.treegen import flat_directory
from repro.sim import Environment


def make_fs(env, batch_size=64, offload=True, max_helpers=4):
    config = LambdaFSConfig(
        num_deployments=4,
        faas=FaaSConfig(
            cluster_vcpus=128.0, vcpus_per_instance=4.0,
            cold_start_min_ms=20.0, cold_start_max_ms=30.0, app_init_ms=5.0,
        ),
        subtree=SubtreeConfig(
            batch_size=batch_size, offload_enabled=offload,
            max_helpers=max_helpers,
        ),
    )
    fs = LambdaFS(env, config)
    fs.format()
    fs.start()
    return fs


def drive(env, gen):
    box = {}

    def proc(env):
        box["v"] = yield from gen

    done = env.process(proc(env))
    env.run(until=done)
    return box["v"]


def setup_tree(fs, files=200):
    tree = flat_directory("/big", files)
    fs.install_namespace(tree.directories, tree.files)
    return tree


def test_subtree_delete_removes_all_rows():
    env = Environment()
    fs = make_fs(env)
    setup_tree(fs, files=150)
    client = fs.new_client()

    def scenario(env):
        r = yield from client.delete("/big", recursive=True)
        assert r.ok, r.error
        return (yield from client.stat("/big/f42"))

    gone = drive(env, scenario(env))
    assert not gone.ok
    # Every inode and dirent row of the subtree is gone.
    assert fs.store.keys_with_prefix(("dirent", 2)) == []


def test_subtree_mv_uses_offloading():
    env = Environment()
    fs = make_fs(env, batch_size=32)
    setup_tree(fs, files=200)
    client = fs.new_client()

    def scenario(env):
        return (yield from client.mv("/big", "/moved"))

    response = drive(env, scenario(env))
    assert response.ok
    # 200 actions / 32 per batch = 7 batches; at least some were
    # offloaded to helper deployments over HTTP.
    helper_instances = [
        instance
        for name, deployment in fs.platform.deployments.items()
        for instance in deployment.all_instances
        if instance.requests_served > 0
    ]
    assert len({i.deployment_name for i in helper_instances}) >= 2


def test_subtree_without_offload_stays_local():
    env = Environment()
    fs = make_fs(env, batch_size=32, offload=False)
    setup_tree(fs, files=100)
    client = fs.new_client()
    response = drive(env, client.mv("/big", "/moved"))
    assert response.ok
    served = {
        instance.deployment_name
        for deployment in fs.platform.deployments.values()
        for instance in deployment.all_instances
        if instance.requests_served > 0
    }
    assert len(served) == 1  # only the leader's deployment worked


def test_subtree_prefix_invalidation_reaches_caches():
    env = Environment()
    fs = make_fs(env)
    setup_tree(fs, files=60)
    client_a = fs.new_client()
    client_b = fs.new_client(fs.new_vm())

    def scenario(env):
        r1 = yield from client_b.stat("/big/f10")  # cache it on b's NN
        assert r1.ok
        r = yield from client_a.delete("/big", recursive=True)
        assert r.ok, r.error
        return (yield from client_b.stat("/big/f10"))

    stale = drive(env, scenario(env))
    assert not stale.ok


def test_subtree_isolation_flag():
    env = Environment()
    fs = make_fs(env)
    setup_tree(fs, files=500)
    client_a = fs.new_client()
    client_b = fs.new_client(fs.new_vm())
    results = []

    def op_a(env):
        results.append((yield from client_a.mv("/big", "/m1")))

    def op_b(env):
        yield env.timeout(5.0)  # overlap with a's subtree op
        results.append((yield from client_b.mv("/big", "/m2")))

    pa = env.process(op_a(env))
    pb = env.process(op_b(env))
    env.run(until=pa)
    if pb.is_alive:
        env.run(until=pb)
    oks = [r.ok for r in results]
    # Exactly one mv wins: the other sees the subtree lock / missing
    # source and fails cleanly — never a half-moved tree.
    assert oks.count(True) == 1
    assert fs.store.peek(("st_lock", 2)) in (None,)


def test_subtree_on_missing_dir_fails_cleanly():
    env = Environment()
    fs = make_fs(env)
    client = fs.new_client()
    response = drive(env, client.delete("/nothing", recursive=True))
    assert not response.ok


def test_mkdir_during_subtree_delete_is_serializable():
    env = Environment()
    fs = make_fs(env)
    setup_tree(fs, files=100)
    client = fs.new_client()

    def scenario(env):
        r = yield from client.delete("/big", recursive=True)
        assert r.ok
        # Recreating afterwards works from a clean slate.
        r = yield from client.mkdirs("/big/new")
        assert r.ok
        return (yield from client.ls("/big"))

    listing = drive(env, scenario(env))
    assert listing.ok and listing.value == ["new"]
