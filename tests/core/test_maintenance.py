"""Unit tests for serverless-compatible DFS maintenance."""

from repro.core.maintenance import BlockReport, DataNodeConfig, DataNodeService
from repro.metastore import NdbConfig, NdbStore
from repro.sim import Environment


def test_datanodes_publish_reports():
    env = Environment()
    store = NdbStore(env, NdbConfig(rtt_ms=0.0))
    service = DataNodeService(env, store, DataNodeConfig(count=3,
                                                         report_interval_ms=100.0))
    service.start()
    env.run(until=1_000)
    assert service.reports_published >= 3 * 9
    for datanode_id in service.datanode_ids:
        report = store.peek(("datanode", datanode_id))
        assert isinstance(report, BlockReport)
        assert report.healthy


def test_reports_refresh_over_time():
    env = Environment()
    store = NdbStore(env, NdbConfig(rtt_ms=0.0))
    service = DataNodeService(env, store, DataNodeConfig(count=1,
                                                         report_interval_ms=50.0))
    service.start()
    env.run(until=100)
    first = store.peek(("datanode", "dn0")).published_at_ms
    env.run(until=300)
    second = store.peek(("datanode", "dn0")).published_at_ms
    assert second > first


def test_start_is_idempotent():
    env = Environment()
    store = NdbStore(env, NdbConfig(rtt_ms=0.0))
    service = DataNodeService(env, store, DataNodeConfig(count=1,
                                                         report_interval_ms=100.0))
    service.start()
    service.start()
    env.run(until=250)
    # One loop, not two: ~3 reports in 250 ms, not ~6.
    assert service.reports_published <= 4
