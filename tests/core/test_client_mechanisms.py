"""Unit tests for client-side mechanisms: replacement, stragglers,
anti-thrashing, retry fallback."""

import pytest

from repro.core import LambdaFS, LambdaFSConfig
from repro.core.client import ClientConfig
from repro.faas import FaaSConfig
from repro.sim import Environment


def make_fs(env, **client_overrides):
    from dataclasses import replace

    config = LambdaFSConfig(
        num_deployments=2,
        faas=FaaSConfig(
            cluster_vcpus=64.0, vcpus_per_instance=4.0,
            cold_start_min_ms=20.0, cold_start_max_ms=30.0, app_init_ms=5.0,
        ),
        client=replace(ClientConfig(), **client_overrides),
    )
    fs = LambdaFS(env, config)
    fs.format()
    fs.start()
    return fs


def drive(env, gen):
    box = {}

    def proc(env):
        box["v"] = yield from gen

    done = env.process(proc(env))
    env.run(until=done)
    return box["v"]


def warm(env, fs, client):
    def setup(env):
        yield from fs.prewarm(1)
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")

    drive(env, setup(env))


def test_replacement_probability_one_forces_http():
    env = Environment()
    fs = make_fs(env, replacement_probability=1.0)
    client = fs.new_client()
    warm(env, fs, client)

    def reads(env):
        for _ in range(10):
            yield from client.stat("/d/f")

    drive(env, reads(env))
    assert client.stats_tcp_rpcs == 0


def test_replacement_probability_zero_prefers_tcp():
    env = Environment()
    fs = make_fs(env, replacement_probability=0.0)
    client = fs.new_client()
    warm(env, fs, client)
    before_http = client.stats_http_rpcs

    def reads(env):
        for _ in range(10):
            yield from client.stat("/d/f")

    drive(env, reads(env))
    assert client.stats_http_rpcs == before_http  # all TCP
    assert client.stats_tcp_rpcs >= 10


def test_moving_average_updates():
    env = Environment()
    fs = make_fs(env)
    client = fs.new_client()
    assert client._moving_average() == 0.0
    client._observe(2.0)
    client._observe(4.0)
    assert client._moving_average() == pytest.approx(3.0)


def test_latency_window_is_bounded():
    env = Environment()
    fs = make_fs(env, latency_window=4)
    client = fs.new_client()
    for value in (100.0,) * 4:
        client._observe(value)
    for value in (1.0,) * 4:
        client._observe(value)
    assert client._moving_average() == pytest.approx(1.0)


def test_antithrash_triggers_on_latency_spike():
    env = Environment()
    fs = make_fs(env, antithrash_threshold=2.0, antithrash_cooldown_ms=500.0)
    client = fs.new_client()
    for _ in range(8):
        client._observe(1.0)
    assert not client._antithrash_active()
    client._observe(10.0)  # 10x the moving average
    assert client._antithrash_active()


def test_antithrash_cooldown_expires():
    env = Environment()
    fs = make_fs(env, antithrash_threshold=2.0, antithrash_cooldown_ms=100.0)
    client = fs.new_client()
    for _ in range(4):
        client._observe(1.0)
    client._observe(50.0)
    assert client._antithrash_active()

    def wait(env):
        yield env.timeout(200.0)

    drive(env, wait(env))
    assert not client._antithrash_active()


def test_antithrash_disabled_never_triggers():
    env = Environment()
    fs = make_fs(env, antithrash_enabled=False)
    client = fs.new_client()
    for _ in range(4):
        client._observe(1.0)
    client._observe(1_000.0)
    assert not client._antithrash_active()


def test_antithrash_mode_suppresses_replacement():
    env = Environment()
    fs = make_fs(env, replacement_probability=1.0, antithrash_threshold=2.0)
    client = fs.new_client()
    warm(env, fs, client)
    # Force anti-thrash mode, then issue reads: despite p=1.0, TCP
    # must be used because the mode suppresses HTTP invocations.
    for _ in range(4):
        client._observe(1.0)
    client._observe(100.0)
    assert client._antithrash_active()
    tcp_before = client.stats_tcp_rpcs

    def reads(env):
        for _ in range(5):
            yield from client.stat("/d/f")

    drive(env, reads(env))
    assert client.stats_tcp_rpcs == tcp_before + 5


def test_straggler_resubmits_slow_request():
    env = Environment()
    fs = make_fs(env, straggler_floor_ms=10.0, straggler_threshold=2.0)
    client = fs.new_client()
    warm(env, fs, client)

    # Stall the only instance's CPU so the next TCP request exceeds
    # the straggler threshold and is abandoned + resubmitted.
    deployment = fs.platform.deployments[fs.partitioner.deployment_for("/d/f")]
    instance = deployment.live_instances()[0]

    def hog(env):
        with instance.cpu.request() as slot:
            yield slot
            # occupy one of 4 slots fully; then grab them all
            yield env.timeout(500)

    for _ in range(instance.cpu.capacity):
        env.process(hog(env))

    def read(env):
        return (yield from client.stat("/d/f"))

    response = drive(env, read(env))
    assert response.ok
    assert client.stats_stragglers >= 1


def test_straggler_disabled_waits():
    env = Environment()
    fs = make_fs(env, straggler_enabled=False)
    client = fs.new_client()
    warm(env, fs, client)
    deployment = fs.platform.deployments[fs.partitioner.deployment_for("/d/f")]
    instance = deployment.live_instances()[0]

    def hog(env):
        with instance.cpu.request() as slot:
            yield slot
            yield env.timeout(300)

    for _ in range(instance.cpu.capacity):
        env.process(hog(env))

    def read(env):
        return (yield from client.stat("/d/f"))

    start = env.now
    response = drive(env, read(env))
    assert response.ok
    assert client.stats_stragglers == 0
    assert env.now - start >= 290  # waited out the stall


def test_http_fallback_when_no_connections():
    env = Environment()
    fs = make_fs(env, replacement_probability=0.0)
    client = fs.new_client()
    # No connections exist yet: the very first op must go HTTP.
    response = drive(env, client.mkdirs("/d"))
    assert response.ok
    assert client.stats_http_rpcs == 1
