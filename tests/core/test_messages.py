"""Unit tests for the RPC message types."""

from repro.core.messages import MetadataRequest, MetadataResponse, OpType


def test_write_op_classification():
    assert OpType.CREATE_FILE.is_write
    assert OpType.MKDIRS.is_write
    assert OpType.DELETE.is_write
    assert OpType.MV.is_write
    assert not OpType.READ_FILE.is_write
    assert not OpType.STAT.is_write
    assert not OpType.LS.is_write


def test_subtree_capable_ops():
    assert OpType.MV.is_subtree_capable
    assert OpType.DELETE.is_subtree_capable
    assert not OpType.CREATE_FILE.is_subtree_capable
    assert not OpType.READ_FILE.is_subtree_capable


def test_request_ids_are_unique():
    a = MetadataRequest(op=OpType.STAT, path="/x")
    b = MetadataRequest(op=OpType.STAT, path="/x")
    assert a.request_id != b.request_id


def test_request_defaults():
    request = MetadataRequest(op=OpType.MV, path="/a", dst_path="/b")
    assert request.attempt == 1
    assert request.tcp_servers == ()
    assert not request.recursive
    assert request.payload is None


def test_response_defaults():
    response = MetadataResponse(request_id=1, ok=True, value=42)
    assert response.error is None
    assert not response.cache_hit
    assert response.served_by == ""


def test_op_values_match_table2_vocabulary():
    # The op names are exactly the paper's Table 2 row labels.
    assert OpType.CREATE_FILE.value == "create file"
    assert OpType.DELETE.value == "delete file/dir"
    assert OpType.STAT.value == "stat file/dir"
