"""Permission enforcement and the set_permission operation."""

import pytest

from repro.core import LambdaFS, LambdaFSConfig
from repro.faas import FaaSConfig
from repro.sim import Environment


@pytest.fixture()
def system():
    env = Environment()
    fs = LambdaFS(env, LambdaFSConfig(
        num_deployments=2,
        faas=FaaSConfig(
            cluster_vcpus=32.0, vcpus_per_instance=4.0,
            cold_start_min_ms=20.0, cold_start_max_ms=30.0, app_init_ms=5.0,
        ),
    ))
    fs.format()
    fs.start()
    return env, fs


def drive(env, gen):
    box = {}

    def proc(env):
        box["v"] = yield from gen

    done = env.process(proc(env))
    env.run(until=done)
    return box["v"]


def setup_file(env, client):
    def scenario(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")

    drive(env, scenario(env))


def test_set_permission_roundtrip(system):
    env, fs = system
    client = fs.new_client()
    setup_file(env, client)

    def scenario(env):
        r = yield from client.set_permission("/d/f", 0o600)
        assert r.ok, r.error
        return (yield from client.stat("/d/f"))

    response = drive(env, scenario(env))
    assert response.ok
    assert response.value.permission == 0o600


def test_unreadable_file_denied(system):
    env, fs = system
    client = fs.new_client()
    setup_file(env, client)

    def scenario(env):
        yield from client.set_permission("/d/f", 0o200)  # write-only
        return (yield from client.read_file("/d/f"))

    response = drive(env, scenario(env))
    assert not response.ok and "AccessDenied" in response.error


def test_non_traversable_directory_denied(system):
    env, fs = system
    client = fs.new_client()
    setup_file(env, client)

    def scenario(env):
        r = yield from client.set_permission("/d", 0o600)  # no execute bit
        assert r.ok, r.error
        return (yield from client.stat("/d/f"))

    response = drive(env, scenario(env))
    assert not response.ok and "AccessDenied" in response.error


def test_read_only_directory_rejects_create(system):
    env, fs = system
    client = fs.new_client()
    setup_file(env, client)

    def scenario(env):
        yield from client.set_permission("/d", 0o555)
        return (yield from client.create_file("/d/new"))

    response = drive(env, scenario(env))
    assert not response.ok and "AccessDenied" in response.error


def test_permission_change_invalidates_other_caches(system):
    env, fs = system
    client_a = fs.new_client()
    client_b = fs.new_client(fs.new_vm())
    setup_file(env, client_a)

    def scenario(env):
        warm = yield from client_b.stat("/d/f")  # b caches mode 755
        assert warm.ok
        r = yield from client_a.set_permission("/d/f", 0o000)
        assert r.ok, r.error
        # b's cached copy must have been invalidated: the read is
        # denied, not served stale from cache.
        return (yield from client_b.read_file("/d/f"))

    response = drive(env, scenario(env))
    assert not response.ok and "AccessDenied" in response.error


def test_invalid_mode_rejected(system):
    env, fs = system
    client = fs.new_client()
    setup_file(env, client)
    response = drive(env, client.set_permission("/d/f", 0o7777))
    assert not response.ok and "AccessDenied" in response.error


def test_restore_permission_restores_access(system):
    env, fs = system
    client = fs.new_client()
    setup_file(env, client)

    def scenario(env):
        yield from client.set_permission("/d/f", 0o000)
        yield from client.set_permission("/d/f", 0o644)
        return (yield from client.read_file("/d/f"))

    response = drive(env, scenario(env))
    assert response.ok


def test_hopsfs_supports_set_permission():
    from repro.baselines import HopsFSCluster, HopsFSConfig
    from repro.metastore import NdbConfig

    env = Environment()
    cluster = HopsFSCluster(env, HopsFSConfig(
        num_namenodes=2, ndb=NdbConfig(rtt_ms=0.1),
    ))
    cluster.format()
    client = cluster.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        r = yield from client.set_permission("/d/f", 0o400)
        assert r.ok, r.error
        return (yield from client.stat("/d/f"))

    box = {}

    def proc(env):
        box["v"] = yield from scenario(env)

    done = env.process(proc(env))
    env.run(until=done)
    assert box["v"].value.permission == 0o400
