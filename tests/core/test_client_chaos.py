"""Client-side safety under faults: resubmit duplicate-result safety
and anti-thrash cooldown re-entry counting."""

import pytest

from repro.chaos import FaultSpec, Scenario, install_chaos
from repro.core import LambdaFS, LambdaFSConfig
from repro.core.client import ClientConfig
from repro.faas import FaaSConfig
from repro.sim import Environment
from repro.trace import install_tracer

pytestmark = pytest.mark.chaos


def make_fs(env, **client_overrides):
    from dataclasses import replace

    config = LambdaFSConfig(
        num_deployments=2,
        faas=FaaSConfig(
            cluster_vcpus=64.0, vcpus_per_instance=4.0,
            cold_start_min_ms=20.0, cold_start_max_ms=30.0, app_init_ms=5.0,
        ),
        client=replace(ClientConfig(), **client_overrides),
    )
    fs = LambdaFS(env, config)
    fs.format()
    fs.start()
    return fs


def drive(env, gen):
    box = {}

    def proc(env):
        box["v"] = yield from gen

    done = env.process(proc(env))
    env.run(until=done)
    return box["v"]


def warm(env, fs, client):
    def setup(env):
        yield from fs.prewarm(1)
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")

    drive(env, setup(env))


def spans_of_kind(tracer, kind):
    return [s for s in tracer.spans.values() if s.kind == kind]


def test_straggler_resubmitted_write_is_served_from_result_cache():
    """The abandoned first attempt still completes in the background;
    the resubmit carries the same request id and must get the cached
    original answer instead of re-running the write."""
    env = Environment()
    tracer = install_tracer(env)
    fs = make_fs(env, replacement_probability=0.0,
                 straggler_floor_ms=10.0, straggler_threshold=2.0)
    client = fs.new_client()
    warm(env, fs, client)

    deployment = fs.platform.deployments[fs.partitioner.deployment_for("/d/f")]
    instance = deployment.live_instances()[0]

    def hog(env):
        with instance.cpu.request() as slot:
            yield slot
            yield env.timeout(120.0)

    for _ in range(instance.cpu.capacity):
        env.process(hog(env))

    response = drive(env, client.set_permission("/d/f", 0o644))
    assert response.ok
    assert client.stats_stragglers >= 1
    # The duplicate was answered from the in-flight table (racing its
    # original) or the result cache (original already finished) — it
    # must not have been re-executed.
    replays = (spans_of_kind(tracer, "nn.inflight")
               + spans_of_kind(tracer, "nn.result_cache"))
    assert replays, "resubmit was re-executed instead of replayed"
    executed = [
        s for s in spans_of_kind(tracer, "nn.handle")
        if s.attrs.get("op") == "set permission"
    ]
    assert len(executed) == 1, "write executed more than once"
    assert tracer.violations() == []


def test_chaos_tcp_duplicate_is_answered_by_result_cache():
    """tcp_duplicate delivers every TCP request twice; the second
    serve must come out of the NameNode result cache."""
    env = Environment()
    tracer = install_tracer(env)
    fs = make_fs(env, replacement_probability=0.0)
    client = fs.new_client()
    warm(env, fs, client)

    engine = install_chaos(env, system=fs, seed=1)
    engine.start(Scenario("dup", faults=(
        FaultSpec("tcp_duplicate", at_ms=0.0, duration_ms=10_000.0,
                  params={"p": 1.0}),
    )))

    def reads(env):
        for _ in range(5):
            yield from client.stat("/d/f")

    drive(env, reads(env))
    engine.stop()
    duplicated = [e for e in engine.log if e.kind == "tcp_duplicate"
                  and e.action == "inject"]
    assert duplicated, "no duplicate was injected over TCP"
    assert spans_of_kind(tracer, "chaos.tcp_duplicate")
    assert spans_of_kind(tracer, "nn.result_cache")
    assert tracer.violations() == []


def test_antithrash_reentry_is_counted_once_per_cooldown():
    env = Environment()
    fs = make_fs(env, antithrash_threshold=2.0, antithrash_cooldown_ms=100.0)
    client = fs.new_client()
    for _ in range(4):
        client._observe(1.0)
    assert client.stats_antithrash_entries == 0

    client._observe(10.0)  # spike -> enter cooldown
    assert client._antithrash_active()
    assert client.stats_antithrash_entries == 1

    client._observe(50.0)  # spike during cooldown -> extension, not entry
    assert client._antithrash_active()
    assert client.stats_antithrash_entries == 1

    def wait(env):
        yield env.timeout(200.0)

    drive(env, wait(env))
    assert not client._antithrash_active()

    client._observe(500.0)  # fresh spike after expiry -> second entry
    assert client._antithrash_active()
    assert client.stats_antithrash_entries == 2
