"""λFS with each pluggable Coordinator backend (§3.5)."""

import pytest

from repro.coordination import NdbCoordinator, ZooKeeperCoordinator
from repro.core import LambdaFS, LambdaFSConfig
from repro.faas import FaaSConfig
from repro.sim import Environment


def make_fs(env, kind):
    config = LambdaFSConfig(
        num_deployments=2,
        coordinator_kind=kind,
        faas=FaaSConfig(
            cluster_vcpus=32.0, vcpus_per_instance=4.0,
            cold_start_min_ms=20.0, cold_start_max_ms=30.0, app_init_ms=5.0,
        ),
    )
    fs = LambdaFS(env, config)
    fs.format()
    fs.start()
    return fs


def run_write_scenario(kind):
    env = Environment()
    fs = make_fs(env, kind)
    client = fs.new_client()
    box = {}

    def scenario(env):
        yield from client.mkdirs("/d")
        start = env.now
        response = yield from client.create_file("/d/f")
        box["latency"] = env.now - start
        box["ok"] = response.ok
        check = yield from client.stat("/d/f")
        box["stat_ok"] = check.ok

    done = env.process(scenario(env))
    env.run(until=done)
    return fs, box


def test_zookeeper_backend_works():
    fs, box = run_write_scenario("zookeeper")
    assert box["ok"] and box["stat_ok"]
    assert isinstance(fs.coordinator, ZooKeeperCoordinator)


def test_ndb_backend_works():
    fs, box = run_write_scenario("ndb")
    assert box["ok"] and box["stat_ok"]
    assert isinstance(fs.coordinator, NdbCoordinator)


def test_unknown_backend_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        LambdaFS(env, LambdaFSConfig(coordinator_kind="etcd"))


def test_ndb_backend_adds_write_latency():
    _fs_zk, zk = run_write_scenario("zookeeper")
    _fs_ndb, ndb = run_write_scenario("ndb")
    # The NDB-backed Coordinator's slower pub/ack shows on the write
    # path (the INV/ACK round), everything else being equal.
    assert ndb["latency"] > zk["latency"]
