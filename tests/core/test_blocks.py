"""Unit tests for block allocation and placement."""

import pytest

from repro.core.blocks import BlockManager, BlockPlacementConfig, rack_aware_place


def test_allocate_unique_ids():
    manager = BlockManager(BlockPlacementConfig(blocks_per_file=2))
    a = manager.allocate()
    b = manager.allocate()
    assert len(a) == 2
    assert set(a).isdisjoint(b)


def test_place_respects_replication():
    manager = BlockManager(BlockPlacementConfig(replication=3))
    datanodes = [f"dn{i}" for i in range(6)]
    replicas = manager.place(42, datanodes)
    assert len(replicas) == 3
    assert len(set(replicas)) == 3
    assert set(replicas) <= set(datanodes)


def test_place_with_fewer_datanodes_than_replication():
    manager = BlockManager(BlockPlacementConfig(replication=3))
    assert manager.place(1, ["dn0"]) == ["dn0"]
    assert manager.place(1, []) == []


def test_placement_is_deterministic():
    manager = BlockManager()
    datanodes = ["dn0", "dn1", "dn2", "dn3"]
    assert manager.place(7, datanodes) == manager.place(7, datanodes)
    # Order of the input list must not matter (rendezvous hashing).
    assert manager.place(7, list(reversed(datanodes))) == manager.place(7, datanodes)


def test_placement_spreads_blocks():
    manager = BlockManager(BlockPlacementConfig(replication=1))
    datanodes = [f"dn{i}" for i in range(4)]
    primaries = {manager.place(block, datanodes)[0] for block in range(64)}
    assert len(primaries) == 4  # every DataNode is someone's primary


def test_placement_stable_under_datanode_loss():
    """Rendezvous property: removing one DataNode only moves blocks
    that lived on it."""
    manager = BlockManager(BlockPlacementConfig(replication=1))
    datanodes = [f"dn{i}" for i in range(5)]
    before = {block: manager.place(block, datanodes)[0] for block in range(200)}
    survivors = [dn for dn in datanodes if dn != "dn2"]
    for block, owner in before.items():
        after = manager.place(block, survivors)[0]
        if owner != "dn2":
            assert after == owner


def test_two_managers_do_not_share_a_counter():
    """Regression: the id counter is per-manager state, not process
    state — two managers in one sim must be able to run disjoint id
    spaces instead of interleaving (or, with a shared iterator,
    colliding after a replay restore)."""
    a = BlockManager(BlockPlacementConfig(blocks_per_file=1))
    b = BlockManager(BlockPlacementConfig(blocks_per_file=1), first_id=1_000)
    assert a.allocate() == (1,)
    assert b.allocate() == (1_000,)
    assert a.allocate() == (2,)  # b's allocation did not advance a
    assert b.allocate() == (1_001,)


def test_snapshot_restore_replays_identical_ids():
    manager = BlockManager(BlockPlacementConfig(blocks_per_file=2))
    manager.allocate()
    state = manager.snapshot()
    first = [manager.allocate() for _ in range(3)]
    manager.restore(state)
    replay = [manager.allocate() for _ in range(3)]
    assert replay == first


def test_counter_validation():
    with pytest.raises(ValueError):
        BlockManager(first_id=0)
    with pytest.raises(ValueError):
        BlockManager().restore(0)


def test_rack_aware_place_spreads_racks():
    racks = {f"dn{i}": f"rack{i % 3}" for i in range(9)}
    for block in range(32):
        placed = rack_aware_place(block, racks, 3)
        assert len(placed) == 3
        assert len({racks[dn] for dn in placed}) == 3


def test_rack_aware_place_falls_back_within_one_rack():
    racks = {"dn0": "rack0", "dn1": "rack0", "dn2": "rack0"}
    placed = rack_aware_place(5, racks, 3)
    assert sorted(placed) == ["dn0", "dn1", "dn2"]


def test_place_with_racks_filters_to_known_nodes():
    manager = BlockManager(BlockPlacementConfig(replication=2))
    racks = {"dn0": "rack0", "dn1": "rack1"}
    placed = manager.place(9, ["dn0", "dn1", "dn9"], racks=racks)
    assert set(placed) == {"dn0", "dn1"}


def test_locations_maps_all_blocks():
    manager = BlockManager()
    datanodes = ["dn0", "dn1", "dn2"]
    table = manager.locations((10, 11), datanodes)
    assert set(table) == {10, 11}
    assert all(replicas for replicas in table.values())


def test_reconcile_drops_dead_datanodes():
    manager = BlockManager(BlockPlacementConfig(replication=2))
    datanodes = ["dn0", "dn1", "dn2"]
    reported = {"dn0": 64, "dn2": 64}  # dn1 stopped reporting
    table = manager.reconcile((5,), reported, datanodes)
    assert set(table[5]) <= {"dn0", "dn2"}


def test_created_files_get_blocks():
    from repro.core import LambdaFS
    from repro.sim import Environment

    env = Environment()
    fs = LambdaFS(env)
    fs.format()
    fs.start()
    client = fs.new_client()
    box = {}

    def main(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        yield env.timeout(4_000)  # let DataNodes publish reports
        box["r"] = yield from client.read_file("/d/f")

    done = env.process(main(env))
    env.run(until=done)
    view = box["r"].value
    assert view["inode"].block_ids
    assert view["blocks"]
    for replicas in view["blocks"].values():
        assert 1 <= len(replicas) <= 3
