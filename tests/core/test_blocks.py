"""Unit tests for block allocation and placement."""

from repro.core.blocks import BlockManager, BlockPlacementConfig


def test_allocate_unique_ids():
    manager = BlockManager(BlockPlacementConfig(blocks_per_file=2))
    a = manager.allocate()
    b = manager.allocate()
    assert len(a) == 2
    assert set(a).isdisjoint(b)


def test_place_respects_replication():
    manager = BlockManager(BlockPlacementConfig(replication=3))
    datanodes = [f"dn{i}" for i in range(6)]
    replicas = manager.place(42, datanodes)
    assert len(replicas) == 3
    assert len(set(replicas)) == 3
    assert set(replicas) <= set(datanodes)


def test_place_with_fewer_datanodes_than_replication():
    manager = BlockManager(BlockPlacementConfig(replication=3))
    assert manager.place(1, ["dn0"]) == ["dn0"]
    assert manager.place(1, []) == []


def test_placement_is_deterministic():
    manager = BlockManager()
    datanodes = ["dn0", "dn1", "dn2", "dn3"]
    assert manager.place(7, datanodes) == manager.place(7, datanodes)
    # Order of the input list must not matter (rendezvous hashing).
    assert manager.place(7, list(reversed(datanodes))) == manager.place(7, datanodes)


def test_placement_spreads_blocks():
    manager = BlockManager(BlockPlacementConfig(replication=1))
    datanodes = [f"dn{i}" for i in range(4)]
    primaries = {manager.place(block, datanodes)[0] for block in range(64)}
    assert len(primaries) == 4  # every DataNode is someone's primary


def test_placement_stable_under_datanode_loss():
    """Rendezvous property: removing one DataNode only moves blocks
    that lived on it."""
    manager = BlockManager(BlockPlacementConfig(replication=1))
    datanodes = [f"dn{i}" for i in range(5)]
    before = {block: manager.place(block, datanodes)[0] for block in range(200)}
    survivors = [dn for dn in datanodes if dn != "dn2"]
    for block, owner in before.items():
        after = manager.place(block, survivors)[0]
        if owner != "dn2":
            assert after == owner


def test_locations_maps_all_blocks():
    manager = BlockManager()
    datanodes = ["dn0", "dn1", "dn2"]
    table = manager.locations((10, 11), datanodes)
    assert set(table) == {10, 11}
    assert all(replicas for replicas in table.values())


def test_reconcile_drops_dead_datanodes():
    manager = BlockManager(BlockPlacementConfig(replication=2))
    datanodes = ["dn0", "dn1", "dn2"]
    reported = {"dn0": 64, "dn2": 64}  # dn1 stopped reporting
    table = manager.reconcile((5,), reported, datanodes)
    assert set(table[5]) <= {"dn0", "dn2"}


def test_created_files_get_blocks():
    from repro.core import LambdaFS
    from repro.sim import Environment

    env = Environment()
    fs = LambdaFS(env)
    fs.format()
    fs.start()
    client = fs.new_client()
    box = {}

    def main(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        yield env.timeout(4_000)  # let DataNodes publish reports
        box["r"] = yield from client.read_file("/d/f")

    done = env.process(main(env))
    env.run(until=done)
    view = box["r"].value
    assert view["inode"].block_ids
    assert view["blocks"]
    for replicas in view["blocks"].values():
        assert 1 <= len(replicas) <= 3
