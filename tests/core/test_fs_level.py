"""Tests for the LambdaFS assembly object itself."""

import pytest

from repro.core import LambdaFS, LambdaFSConfig
from repro.faas import FaaSConfig
from repro.sim import Environment


def quick_config(**overrides):
    defaults = dict(
        num_deployments=4,
        faas=FaaSConfig(
            cluster_vcpus=64.0, vcpus_per_instance=4.0,
            cold_start_min_ms=20.0, cold_start_max_ms=30.0, app_init_ms=5.0,
        ),
    )
    defaults.update(overrides)
    return LambdaFSConfig(**defaults)


def drive(env, gen):
    done = env.process((lambda g: (yield from g))(gen))
    env.run(until=done)


def test_deployments_registered_at_construction():
    env = Environment()
    fs = LambdaFS(env, quick_config())
    assert sorted(fs.platform.deployments) == [
        "NameNode0", "NameNode1", "NameNode2", "NameNode3"
    ]


def test_prewarm_provisions_one_per_deployment():
    env = Environment()
    fs = LambdaFS(env, quick_config())
    fs.format()
    drive(env, fs.prewarm(1))
    assert fs.active_namenodes() == 4
    for deployment in fs.platform.deployments.values():
        assert deployment.live_count() == 1
        assert deployment.live_instances()[0].state == "warm"


def test_prewarm_respects_vcpu_cap():
    env = Environment()
    fs = LambdaFS(env, quick_config(faas=FaaSConfig(
        cluster_vcpus=8.0, vcpus_per_instance=4.0,
        cold_start_min_ms=20.0, cold_start_max_ms=30.0, app_init_ms=5.0,
    )))
    fs.format()
    drive(env, fs.prewarm(4))
    assert fs.active_namenodes() == 2  # 8 vCPU / 4 per instance


def test_install_namespace_bulk():
    env = Environment()
    fs = LambdaFS(env, quick_config())
    fs.format()
    fs.install_namespace(["/a/b"], ["/a/b/f1", "/a/b/f2"])
    fs.start()
    client = fs.new_client()
    box = {}

    def main(env):
        box["r"] = yield from client.ls("/a/b")

    done = env.process(main(env))
    env.run(until=done)
    assert box["r"].value == ["f1", "f2"]


def test_costs_start_at_zero():
    env = Environment()
    fs = LambdaFS(env, quick_config())
    assert fs.cost_usd() == 0.0
    assert fs.simplified_cost_usd() == 0.0
    assert fs.total_requests_served() == 0


def test_http_requests_billed_separately():
    env = Environment()
    fs = LambdaFS(env, quick_config())
    fs.format()
    fs.start()
    client = fs.new_client()

    def main(env):
        yield from client.mkdirs("/d")       # http (first contact)
        for _ in range(5):
            yield from client.stat("/d")     # tcp after connect-back

    drive(env, main(env))
    assert fs.total_requests_served() >= 6
    assert fs.total_http_requests() < fs.total_requests_served()


def test_seed_changes_latency_draws():
    env_a = Environment()
    fs_a = LambdaFS(env_a, quick_config(seed=1))
    env_b = Environment()
    fs_b = LambdaFS(env_b, quick_config(seed=2))
    draws_a = [fs_a.latency.http_oneway() for _ in range(5)]
    draws_b = [fs_b.latency.http_oneway() for _ in range(5)]
    assert draws_a != draws_b


def test_same_seed_reproduces():
    def run_once():
        env = Environment()
        fs = LambdaFS(env, quick_config(seed=5))
        fs.format()
        fs.start()
        client = fs.new_client()

        def main(env):
            yield from client.mkdirs("/x")
            yield from client.create_file("/x/f")
            yield from client.stat("/x/f")

        drive(env, main(env))
        return env.now, len(fs.metrics.records)

    assert run_once() == run_once()
