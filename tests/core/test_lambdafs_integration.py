"""Integration tests: the full λFS stack on the simulator."""

import pytest

from repro.core import LambdaFS, LambdaFSConfig, OpType
from repro.core.client import ClientConfig
from repro.core.namenode import NameNodeConfig
from repro.faas import FaaSConfig
from repro.metastore import NdbConfig
from repro.sim import Environment


def make_fs(env, **overrides):
    """A λFS with fast cold starts so tests stay quick."""
    defaults = dict(
        num_deployments=4,
        faas=FaaSConfig(
            cluster_vcpus=128.0,
            vcpus_per_instance=4.0,
            concurrency_level=2,
            cold_start_min_ms=50.0,
            cold_start_max_ms=80.0,
            app_init_ms=10.0,
            idle_reclaim_ms=60_000.0,
        ),
        ndb=NdbConfig(rtt_ms=0.2),
        client=ClientConfig(replacement_probability=0.01),
    )
    defaults.update(overrides)
    fs = LambdaFS(env, LambdaFSConfig(**defaults))
    fs.format()
    fs.start()
    return fs


def drive(env, generator):
    """Run a client generator to completion, return its value."""
    box = {}

    def proc(env):
        box["value"] = yield from generator

    done = env.process(proc(env))
    env.run(until=done)
    return box["value"]


def test_basic_lifecycle():
    env = Environment()
    fs = make_fs(env)
    client = fs.new_client()

    def scenario(env):
        r = yield from client.mkdirs("/data")
        assert r.ok
        r = yield from client.create_file("/data/f")
        assert r.ok
        r = yield from client.stat("/data/f")
        assert r.ok and r.value.name == "f"
        r = yield from client.ls("/data")
        assert r.ok and r.value == ["f"]
        r = yield from client.delete("/data/f")
        assert r.ok
        r = yield from client.stat("/data/f")
        assert not r.ok and "NotFound" in r.error
        return True

    assert drive(env, scenario(env))


def test_second_read_hits_cache():
    env = Environment()
    fs = make_fs(env)
    client = fs.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        first = yield from client.stat("/d/f")
        second = yield from client.stat("/d/f")
        return first, second

    first, second = drive(env, scenario(env))
    assert second.ok
    # Same deployment serves both; the second must be a cache hit.
    assert second.cache_hit


def test_strong_consistency_across_clients():
    """A write by one client invalidates another NameNode's cache."""
    env = Environment()
    fs = make_fs(env)
    client_a = fs.new_client()
    client_b = fs.new_client(fs.new_vm())

    def scenario(env):
        yield from client_a.mkdirs("/d")
        yield from client_a.create_file("/d/f")
        # b caches /d/f by reading it.
        r1 = yield from client_b.stat("/d/f")
        assert r1.ok
        # a moves the file; the coherence protocol must invalidate
        # every cached copy before the write persists.
        r2 = yield from client_a.mv("/d/f", "/d/g")
        assert r2.ok, r2.error
        r3 = yield from client_b.stat("/d/f")
        r4 = yield from client_b.stat("/d/g")
        return r3, r4

    r3, r4 = drive(env, scenario(env))
    assert not r3.ok  # stale path must be gone everywhere
    assert r4.ok and r4.value.name == "g"


def test_invalidations_are_sent_for_writes():
    env = Environment()
    fs = make_fs(env)
    client = fs.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        # Warm a second instance in the same deployment by reading
        # via HTTP-ish path: just ensure at least the leader exists.
        yield from client.create_file("/d/f")

    drive(env, scenario(env))
    assert fs.coordinator.invs_sent >= 0  # protocol ran without deadlock
    assert fs.metrics.records  # ops recorded


def test_subtree_delete_removes_descendants():
    env = Environment()
    fs = make_fs(env)
    client = fs.new_client()

    def scenario(env):
        yield from client.mkdirs("/top/sub")
        yield from client.create_file("/top/f1")
        yield from client.create_file("/top/sub/f2")
        r = yield from client.delete("/top", recursive=True)
        assert r.ok, r.error
        r1 = yield from client.stat("/top")
        r2 = yield from client.stat("/top/sub/f2")
        return r1, r2

    r1, r2 = drive(env, scenario(env))
    assert not r1.ok
    assert not r2.ok


def test_subtree_mv_renames_whole_tree():
    env = Environment()
    fs = make_fs(env)
    client = fs.new_client()

    def scenario(env):
        yield from client.mkdirs("/old/inner")
        yield from client.create_file("/old/inner/f")
        r = yield from client.mv("/old", "/new")
        assert r.ok, r.error
        moved = yield from client.stat("/new/inner/f")
        gone = yield from client.stat("/old/inner/f")
        return moved, gone

    moved, gone = drive(env, scenario(env))
    assert moved.ok
    assert not gone.ok


def test_mv_file_is_not_subtree():
    env = Environment()
    fs = make_fs(env)
    client = fs.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        before = fs.store.stats.commits
        r = yield from client.mv("/d/f", "/d/g")
        assert r.ok
        return fs.store.stats.commits - before

    commits = drive(env, scenario(env))
    # Single-INode mv is one transaction, not the multi-phase
    # subtree protocol.
    assert commits == 1


def test_namenode_failure_is_transparent():
    env = Environment()
    fs = make_fs(env)
    client = fs.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        # Kill every live NameNode; the next request must recover
        # via HTTP fallback and a fresh instance.
        for deployment in fs.platform.deployments.values():
            for instance in deployment.live_instances():
                instance.terminate(reason="fault")
        r = yield from client.stat("/d/f")
        return r

    response = drive(env, scenario(env))
    assert response.ok
    assert response.value.name == "f"


def test_failure_mid_request_retries():
    env = Environment()
    fs = make_fs(env)
    client = fs.new_client()

    def killer(env):
        # Kill NameNodes repeatedly while ops are in flight.
        for _ in range(5):
            yield env.timeout(40)
            for deployment in fs.platform.deployments.values():
                for instance in deployment.live_instances():
                    instance.terminate(reason="fault")

    def scenario(env):
        results = []
        yield from client.mkdirs("/d")
        for index in range(10):
            r = yield from client.create_file(f"/d/f{index}")
            results.append(r.ok)
        return results

    env.process(killer(env))
    results = drive(env, scenario(env))
    assert all(results)


def test_autoscaling_provisions_beyond_one_per_deployment():
    env = Environment()
    fs = make_fs(env, client=ClientConfig(replacement_probability=1.0))
    # replacement=1.0 -> every RPC is HTTP, maximal scaling signal.
    fs_dir = "/hot"
    clients = [fs.new_client(fs.new_vm()) for _ in range(8)]

    def setup(env):
        yield from clients[0].mkdirs(fs_dir)
        for index in range(8):
            yield from clients[0].create_file(f"{fs_dir}/f{index}")

    drive(env, setup(env))

    def reader(client, index):
        for _ in range(30):
            yield from client.read_file(f"{fs_dir}/f{index}")

    procs = [env.process(reader(client, i)) for i, client in enumerate(clients)]
    for proc in procs:
        env.run(until=proc) if not proc.triggered else None
    hot_deployment = fs.partitioner.deployment_for(f"{fs_dir}/f0")
    deployment = fs.platform.deployments[hot_deployment]
    assert len(deployment.all_instances) >= 2


def test_tcp_is_preferred_after_connect_back():
    env = Environment()
    fs = make_fs(env, client=ClientConfig(replacement_probability=0.0))
    client = fs.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        for _ in range(20):
            yield from client.stat("/d/f")

    drive(env, scenario(env))
    # After first contact the NameNode connected back; with
    # replacement probability 0 every further RPC to that deployment
    # uses TCP.
    assert client.stats_tcp_rpcs > 10


def test_result_cache_dedupes_resubmission():
    env = Environment()
    fs = make_fs(env)
    client = fs.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        return True

    drive(env, scenario(env))
    # Send the same request twice directly to a NameNode.
    deployment = fs.platform.deployments[fs.partitioner.deployment_for("/d/f")]
    from repro.core.messages import MetadataRequest

    request = MetadataRequest(op=OpType.CREATE_FILE, path="/d/f")
    out = {}

    def direct(env):
        r1, instance = yield from fs.platform.invoke(
            fs.partitioner.deployment_for("/d/f"), request
        )
        r2, _ = yield from fs.platform.invoke(
            fs.partitioner.deployment_for("/d/f"), request
        )
        out["pair"] = (r1, r2)

    done = env.process(direct(env))
    env.run(until=done)
    r1, r2 = out["pair"]
    assert r1.ok
    # Identical request_id: the retained result is returned, the op
    # is NOT re-executed (no AlreadyExists error).
    assert r2.ok and r2.value is r1.value


def test_read_file_returns_block_locations():
    env = Environment()
    fs = make_fs(env)
    client = fs.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        yield env.timeout(5_000)  # allow DataNode reports to publish
        r = yield from client.read_file("/d/f")
        return r

    response = drive(env, scenario(env))
    assert response.ok
    assert response.value["locations"] == ["dn0", "dn1", "dn2", "dn3"]


def test_cost_accumulates_only_when_busy():
    env = Environment()
    fs = make_fs(env)
    client = fs.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        cost_after_work = fs.cost_usd()
        yield env.timeout(30_000)  # long idle period
        return cost_after_work

    cost_after_work = drive(env, scenario(env))
    assert cost_after_work > 0
    # Pay-per-use: the idle period adds (almost) nothing.
    assert fs.cost_usd() < cost_after_work * 1.5
    # The simplified model keeps charging while provisioned.
    assert fs.simplified_cost_usd() > fs.cost_usd()
