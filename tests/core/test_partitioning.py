"""Unit tests for namespace partitioning."""

import pytest

from repro.core.partitioning import NamespacePartitioner


def test_same_directory_same_deployment():
    part = NamespacePartitioner(8)
    assert part.deployment_for("/dir/a.txt") == part.deployment_for("/dir/b.txt")


def test_partitioning_is_deterministic():
    assert (
        NamespacePartitioner(8).deployment_for("/x/y")
        == NamespacePartitioner(8).deployment_for("/x/y")
    )


def test_different_directories_spread():
    part = NamespacePartitioner(16)
    deployments = {part.deployment_for(f"/d{i}/file") for i in range(64)}
    assert len(deployments) > 4  # hashing spreads directories around


def test_root_handled():
    part = NamespacePartitioner(4)
    assert part.deployment_for("/") in part.deployment_names()
    # Top-level entries hash on "/" and land together.
    assert part.deployment_for("/a") == part.deployment_for("/b")


def test_names_and_indices():
    part = NamespacePartitioner(3, prefix="NN")
    assert part.deployment_names() == ["NN0", "NN1", "NN2"]
    index = part.index_for("/dir/file")
    assert part.deployment_for("/dir/file") == f"NN{index}"


def test_rejects_zero_deployments():
    with pytest.raises(ValueError):
        NamespacePartitioner(0)


def test_normalized_paths_agree():
    part = NamespacePartitioner(8)
    assert part.deployment_for("/a//b/") == part.deployment_for("/a/b")
