"""Unit tests for the transactional namespace operations."""

import pytest

from repro.core.errors import (
    AlreadyExistsError,
    NotADirectoryError,
    NotDirEmptyError,
    NotFoundError,
)
from repro.core.operations import IdAllocator, NamespaceOps
from repro.metastore import NdbConfig, NdbStore
from repro.namespace.inode import ROOT_INODE_ID, dirent_key, inode_key
from repro.sim import Environment


@pytest.fixture()
def setup():
    env = Environment()
    store = NdbStore(env, NdbConfig(rtt_ms=0.0))
    ops = NamespaceOps(store)
    ops.format()
    return env, store, ops


def run_txn(env, store, body):
    """Run a transactional body to completion; returns its value."""
    result = {}

    def proc(env):
        value = yield from store.run_transaction(body)
        result["value"] = value

    env.process(proc(env))
    env.run()
    return result["value"]


def test_format_installs_root(setup):
    _env, store, _ops = setup
    root = store.peek(inode_key(ROOT_INODE_ID))
    assert root is not None and root.is_dir


def test_create_file_and_resolve(setup):
    env, store, ops = setup

    def body(txn):
        yield from ops.mkdirs(txn, "/a/b")
        inode, _ = yield from ops.create_file(txn, "/a/b/f.txt")
        return inode

    inode = run_txn(env, store, body)
    assert inode.name == "f.txt" and not inode.is_dir

    def check(txn):
        resolved = yield from ops.resolve(txn, "/a/b/f.txt")
        return resolved

    resolved = run_txn(env, store, check)
    assert set(resolved) == {"/", "/a", "/a/b", "/a/b/f.txt"}
    assert resolved["/a"].is_dir


def test_create_duplicate_rejected(setup):
    env, store, ops = setup

    def create(txn):
        return ops.create_file(txn, "/f")

    run_txn(env, store, create)
    with pytest.raises(AlreadyExistsError):
        run_txn(env, store, create)


def test_create_in_missing_dir_rejected(setup):
    env, store, ops = setup
    with pytest.raises(NotFoundError):
        run_txn(env, store, lambda txn: ops.create_file(txn, "/nope/f"))


def test_create_under_file_rejected(setup):
    env, store, ops = setup
    run_txn(env, store, lambda txn: ops.create_file(txn, "/f"))
    with pytest.raises(NotADirectoryError):
        run_txn(env, store, lambda txn: ops.create_file(txn, "/f/child"))


def test_mkdirs_idempotent(setup):
    env, store, ops = setup

    def body(txn):
        return ops.mkdirs(txn, "/x/y/z")

    _, _, created1 = run_txn(env, store, body)
    _, _, created2 = run_txn(env, store, body)
    assert len(created1) == 3
    assert created2 == []


def test_mkdirs_over_file_rejected(setup):
    env, store, ops = setup
    run_txn(env, store, lambda txn: ops.create_file(txn, "/f"))
    with pytest.raises(NotADirectoryError):
        run_txn(env, store, lambda txn: ops.mkdirs(txn, "/f"))


def test_ls_directory(setup):
    env, store, ops = setup
    ops.install_paths(["/d"], ["/d/a", "/d/b", "/d/c"])

    def body(txn):
        return ops.ls(txn, "/d")

    _resolved, names = run_txn(env, store, body)
    assert names == ["a", "b", "c"]


def test_ls_file_returns_itself(setup):
    env, store, ops = setup
    ops.install_paths([], ["/solo"])
    _resolved, names = run_txn(env, store, lambda txn: ops.ls(txn, "/solo"))
    assert names == ["solo"]


def test_delete_file(setup):
    env, store, ops = setup
    ops.install_paths([], ["/f"])
    run_txn(env, store, lambda txn: ops.delete_single(txn, "/f"))
    with pytest.raises(NotFoundError):
        run_txn(env, store, lambda txn: ops.resolve(txn, "/f"))


def test_delete_nonempty_dir_rejected(setup):
    env, store, ops = setup
    ops.install_paths(["/d"], ["/d/f"])
    with pytest.raises(NotDirEmptyError):
        run_txn(env, store, lambda txn: ops.delete_single(txn, "/d"))


def test_delete_empty_dir(setup):
    env, store, ops = setup
    ops.install_paths(["/d"], [])
    run_txn(env, store, lambda txn: ops.delete_single(txn, "/d"))
    with pytest.raises(NotFoundError):
        run_txn(env, store, lambda txn: ops.resolve(txn, "/d"))


def test_mv_file(setup):
    env, store, ops = setup
    ops.install_paths(["/src", "/dst"], ["/src/f"])
    moved, _ = run_txn(env, store, lambda txn: ops.mv_single(txn, "/src/f", "/dst/g"))
    assert moved.name == "g"
    resolved = run_txn(env, store, lambda txn: ops.resolve(txn, "/dst/g"))
    assert resolved["/dst/g"].id == moved.id
    with pytest.raises(NotFoundError):
        run_txn(env, store, lambda txn: ops.resolve(txn, "/src/f"))


def test_mv_to_existing_target_rejected(setup):
    env, store, ops = setup
    ops.install_paths([], ["/a", "/b"])
    with pytest.raises(AlreadyExistsError):
        run_txn(env, store, lambda txn: ops.mv_single(txn, "/a", "/b"))


def test_mv_directory_carries_children(setup):
    env, store, ops = setup
    ops.install_paths(["/d1"], ["/d1/f"])
    run_txn(env, store, lambda txn: ops.mv_single(txn, "/d1", "/d2"))
    resolved = run_txn(env, store, lambda txn: ops.resolve(txn, "/d2/f"))
    assert resolved["/d2/f"].name == "f"


def test_resolve_with_known_hints_skips_fetch(setup):
    env, store, ops = setup
    ops.install_paths(["/a/b"], ["/a/b/f"])
    full = run_txn(env, store, lambda txn: ops.resolve(txn, "/a/b/f"))
    reads_before = store.stats.reads

    def with_hints(txn):
        return ops.resolve(txn, "/a/b/f", known=full)

    run_txn(env, store, with_hints)
    # Everything was hinted: no further store reads were needed.
    assert store.stats.reads == reads_before


def test_resolve_distrusts_mislinked_hints(setup):
    env, store, ops = setup
    ops.install_paths(["/a"], ["/a/f"])
    full = run_txn(env, store, lambda txn: ops.resolve(txn, "/a/f"))
    # A hint whose parent linkage is wrong must be ignored and the
    # authoritative row fetched instead.
    bogus = full["/a/f"].with_updates(id=999, parent_id=777)
    hints = {"/a/f": bogus, "/": full["/"], "/a": full["/a"]}
    resolved = run_txn(env, store, lambda txn: ops.resolve(txn, "/a/f", known=hints))
    assert resolved["/a/f"].id == full["/a/f"].id


def test_collect_subtree_enumerates_everything(setup):
    env, store, ops = setup
    ops.install_paths(["/t", "/t/sub"], ["/t/f1", "/t/sub/f2"])
    collected = run_txn(env, store, lambda txn: ops.collect_subtree(txn, "/t"))
    paths = [path for path, _ in collected]
    assert paths[0] == "/t"
    assert set(paths) == {"/t", "/t/f1", "/t/sub", "/t/sub/f2"}


def test_collect_subtree_on_file(setup):
    env, store, ops = setup
    ops.install_paths([], ["/solo"])
    collected = run_txn(env, store, lambda txn: ops.collect_subtree(txn, "/solo"))
    assert [path for path, _ in collected] == ["/solo"]


def test_install_paths_bulk(setup):
    _env, store, ops = setup
    ops.install_paths(["/x/y"], ["/x/y/f0", "/x/y/f1"])
    parent = store.peek(dirent_key(ROOT_INODE_ID, "x"))
    assert parent is not None
    assert len(store.keys_with_prefix(("dirent", store.peek(inode_key(parent))))) >= 0


def test_id_allocator_monotonic():
    allocator = IdAllocator()
    first = allocator.next_id()
    second = allocator.next_id()
    assert second == first + 1
    assert first > ROOT_INODE_ID
