"""Unit tests for the RPC fabric (latency, connections, retry)."""

import random

import pytest

from repro.rpc import (
    ClientVM,
    ConnectionDropped,
    LatencyConfig,
    LatencyModel,
    RetryPolicy,
    TcpServer,
)
from repro.sim import Environment


class FakeInstance:
    """Minimal NameNode stand-in for connection tests."""

    def __init__(self, env, deployment_name="NameNode0", service_ms=1.0):
        self.env = env
        self.deployment_name = deployment_name
        self.service_ms = service_ms
        self.is_alive = True
        self.served = []
        self.connections = []

    def serve(self, request, via):
        yield self.env.timeout(self.service_ms)
        self.served.append((request, via))
        return f"ok:{request}"

    def attach_connection(self, connection):
        self.connections.append(connection)


def fixed_latency(**overrides):
    defaults = dict(
        tcp_oneway_min_ms=0.5, tcp_oneway_max_ms=0.5,
        http_oneway_min_ms=5.0, http_oneway_max_ms=5.0,
        gateway_overhead_ms=1.0, intra_vm_ms=0.1,
    )
    defaults.update(overrides)
    return LatencyConfig(**defaults)


def test_latency_draws_within_bounds():
    model = LatencyModel(random.Random(0))
    for _ in range(100):
        assert 0.25 <= model.tcp_oneway() <= 0.55
        assert 3.5 <= model.http_oneway() <= 8.5


def test_tcp_call_roundtrip_latency():
    env = Environment()
    latency = LatencyModel(random.Random(0), fixed_latency())
    vm = ClientVM(env, latency)
    server = vm.assign_server()
    instance = FakeInstance(env)
    connection = server.connect_from(instance)
    results = []

    def client(env):
        response = yield from connection.call("req1")
        results.append((env.now, response))

    env.process(client(env))
    env.run()
    # 0.5 out + 1.0 service + 0.5 back = 2.0 ms.
    assert results == [(2.0, "ok:req1")]
    assert instance.served == [("req1", "tcp")]


def test_call_on_dead_instance_raises():
    env = Environment()
    latency = LatencyModel(random.Random(0), fixed_latency())
    vm = ClientVM(env, latency)
    server = vm.assign_server()
    instance = FakeInstance(env)
    connection = server.connect_from(instance)
    instance.is_alive = False
    failures = []

    def client(env):
        try:
            yield from connection.call("req")
        except ConnectionDropped:
            failures.append(env.now)

    env.process(client(env))
    env.run()
    assert failures == [0]
    assert server.find("NameNode0") is None  # connection dropped


def test_connect_from_dedupes_same_instance():
    env = Environment()
    vm = ClientVM(env, LatencyModel(random.Random(0), fixed_latency()))
    server = vm.assign_server()
    instance = FakeInstance(env)
    c1 = server.connect_from(instance)
    c2 = server.connect_from(instance)
    assert c1 is c2
    assert server.connection_count("NameNode0") == 1


def test_clients_per_server_spawns_servers():
    env = Environment()
    vm = ClientVM(env, LatencyModel(random.Random(0), fixed_latency()),
                  clients_per_server=2)
    servers = [vm.assign_server() for _ in range(5)]
    assert servers[0] is servers[1]
    assert servers[2] is servers[3]
    assert servers[4] is not servers[0]
    assert len(vm.servers) == 3


def test_connection_sharing_across_servers():
    env = Environment()
    vm = ClientVM(env, LatencyModel(random.Random(0), fixed_latency()),
                  clients_per_server=1)
    own = vm.assign_server()
    other = vm.assign_server()
    instance = FakeInstance(env, deployment_name="NameNode5")
    other.connect_from(instance)
    found = []

    def client(env):
        connection = yield from vm.find_shared("NameNode5", own)
        found.append((env.now, connection))

    env.process(client(env))
    env.run()
    assert found[0][1] is not None
    assert found[0][0] == pytest.approx(0.1)  # one intra-VM hop


def test_find_shared_prefers_own_server():
    env = Environment()
    vm = ClientVM(env, LatencyModel(random.Random(0), fixed_latency()),
                  clients_per_server=1)
    own = vm.assign_server()
    vm.assign_server()
    instance = FakeInstance(env)
    own.connect_from(instance)
    found = []

    def client(env):
        connection = yield from vm.find_shared("NameNode0", own)
        found.append((env.now, connection))

    env.process(client(env))
    env.run()
    assert found[0][0] == 0  # no intra-VM hop paid


def test_find_shared_returns_none_when_absent():
    env = Environment()
    vm = ClientVM(env, LatencyModel(random.Random(0), fixed_latency()))
    own = vm.assign_server()
    result = []

    def client(env):
        connection = yield from vm.find_shared("NameNode9", own)
        result.append(connection)

    env.process(client(env))
    env.run()
    assert result == [None]


def test_retry_policy_backs_off_exponentially():
    policy = RetryPolicy(base_ms=10, factor=2, max_ms=1000, jitter=0.0)
    rng = random.Random(0)
    assert policy.delay(1, rng) == 10
    assert policy.delay(2, rng) == 20
    assert policy.delay(3, rng) == 40


def test_retry_policy_caps_at_max():
    policy = RetryPolicy(base_ms=10, factor=10, max_ms=50, jitter=0.0)
    assert policy.delay(5, random.Random(0)) == 50


def test_retry_policy_jitter_spreads():
    policy = RetryPolicy(base_ms=100, factor=1, max_ms=100, jitter=0.5)
    rng = random.Random(0)
    draws = {policy.delay(1, rng) for _ in range(50)}
    assert len(draws) > 10
    assert all(50 <= d <= 150 for d in draws)


def test_retry_policy_rejects_zero_attempt():
    with pytest.raises(ValueError):
        RetryPolicy().delay(0, random.Random(0))


def test_vm_rejects_bad_clients_per_server():
    env = Environment()
    with pytest.raises(ValueError):
        ClientVM(env, LatencyModel(random.Random(0)), clients_per_server=0)


def test_find_rotates_over_live_connections():
    env = Environment()
    vm = ClientVM(env, LatencyModel(random.Random(0), fixed_latency()))
    server = vm.assign_server()
    first = FakeInstance(env, deployment_name="NN7")
    second = FakeInstance(env, deployment_name="NN7")
    c1 = server.connect_from(first)
    # connect_from dedupes per deployment+instance; add a second
    # instance's connection.
    c2 = server.connect_from(second)
    picks = [server.find("NN7") for _ in range(4)]
    # Round-robin spreads load across both connections.
    assert picks[0] is not picks[1]
    assert picks[0] is picks[2]
    assert {picks[0], picks[1]} == {c1, c2}


def test_find_skips_dead_connection_in_rotation():
    env = Environment()
    vm = ClientVM(env, LatencyModel(random.Random(0), fixed_latency()))
    server = vm.assign_server()
    alive = FakeInstance(env, deployment_name="NN8")
    dying = FakeInstance(env, deployment_name="NN8")
    server.connect_from(alive)
    server.connect_from(dying)
    dying.is_alive = False
    for _ in range(4):
        connection = server.find("NN8")
        assert connection.instance is alive
