"""ACK redelivery and the deregister/INV races under injected ACK loss.

These drive the Coordinator directly with a stub ``env.chaos`` that
implements only ``ack_should_drop`` — the single hook ``_deliver``
consults — so the retry loop and the "no ACK required from terminated
NameNodes" rule can be pinned down without a full system.
"""

import pytest

from repro.coordination import make_coordinator
from repro.coordination.coordinator import Coordinator, CoordinatorConfig
from repro.sim import Environment

pytestmark = pytest.mark.chaos


class AckChaos:
    """Drop the first N ACKs per member (None = drop forever)."""

    def __init__(self, drops_by_member):
        self.drops = dict(drops_by_member)
        self.calls = []

    def ack_should_drop(self, deployment, member_id):
        self.calls.append((deployment, member_id))
        remaining = self.drops.get(member_id, 0)
        if remaining is None:
            return True
        if remaining > 0:
            self.drops[member_id] = remaining - 1
            return True
        return False


def make_env_and_coord(**config_overrides):
    env = Environment()
    if config_overrides:
        coord = Coordinator(env, CoordinatorConfig(**config_overrides))
    else:
        coord = make_coordinator(env)
    return env, coord


def start_invalidate(env, coord, deployment="d", paths=("/x",)):
    return env.process(coord.invalidate(deployment, paths=paths))


def test_redelivery_collects_ack_after_drops():
    env, coord = make_env_and_coord()
    handled = []
    coord.register("d", "b", lambda inv: handled.append(inv.inv_id))
    env.chaos = AckChaos({"b": 2})

    done = start_invalidate(env, coord)
    env.run(until=60.0)
    assert done.triggered

    # Two dropped ACKs -> the whole INV is redelivered twice; the
    # idempotent handler ran three times but exactly one ACK landed.
    assert handled == [1, 1, 1]
    assert coord.acks_received == 1
    # publish + ack = 0.8 per attempt, plus 5 ms retry backoff between
    # attempts: 0.8 + 2 * (5.0 + 0.8) = 12.4 ms to completion.
    assert done.value == 1
    assert len(env.chaos.calls) == 3


def test_completion_time_includes_retry_backoff():
    env, coord = make_env_and_coord()
    coord.register("d", "b", lambda inv: None)
    env.chaos = AckChaos({"b": 2})
    finished = []

    def writer(env):
        yield from coord.invalidate("d", paths=("/x",))
        finished.append(env.now)

    env.process(writer(env))
    env.run(until=60.0)
    assert finished == [pytest.approx(12.4)]


def test_deregister_mid_retry_releases_the_waiter():
    """A member that keeps dropping ACKs and then dies must not strand
    the writer: deregistration drops it from the pending set."""
    env, coord = make_env_and_coord()
    coord.register("d", "a", lambda inv: None)
    coord.register("d", "b", lambda inv: None)
    env.chaos = AckChaos({"b": None})  # b never ACKs

    done = start_invalidate(env, coord)
    env.run(until=10.0)
    assert not done.triggered  # still waiting on b
    assert coord.acks_received == 1  # a's ACK landed

    coord.deregister("d", "b")
    env.run(until=40.0)
    assert done.triggered
    # b's in-flight redelivery hits the liveness check and exits the
    # loop without a late ACK: no double count, no hung waiter.
    assert coord.acks_received == 1
    assert coord._pending == {}


def test_retry_disabled_strands_writer_until_deregister():
    """ack_max_retries=0 is the deliberately broken path: one dropped
    ACK and the deliver loop gives up for good."""
    env, coord = make_env_and_coord(ack_retry_ms=5.0, ack_max_retries=0)
    coord.register("d", "b", lambda inv: None)
    env.chaos = AckChaos({"b": 1})  # a single drop is now fatal

    done = start_invalidate(env, coord)
    env.run(until=100.0)
    assert not done.triggered
    assert coord.acks_received == 0

    coord.deregister("d", "b")
    env.run(until=110.0)
    assert done.triggered


def test_deregister_racing_inflight_ack_does_not_double_trigger():
    """b's ACK is already in flight when b deregisters: the round
    completes via the deregister release, and the late ack() finds
    the pending entry gone and must be a harmless no-op."""
    env, coord = make_env_and_coord()
    coord.register("d", "b", lambda inv: None)

    done = start_invalidate(env, coord)

    def killer(env):
        yield env.timeout(0.6)  # after handler (0.4), before ACK (0.8)
        coord.deregister("d", "b")

    env.process(killer(env))
    env.run(until=10.0)
    assert done.triggered
    # The deliver loop still records its ACK at t=0.8 (the message was
    # in flight), but the pending entry is gone: nothing re-triggers.
    assert coord.acks_received == 1
    assert coord._pending == {}


def test_late_ack_for_unknown_inv_is_harmless():
    env, coord = make_env_and_coord()
    coord.register("d", "b", lambda inv: None)
    done = start_invalidate(env, coord)
    env.run(until=10.0)
    assert done.triggered
    coord.ack(1, "b")  # round long gone
    assert coord.acks_received == 2  # counted, but nothing to trigger
    assert coord._pending == {}
