"""Unit tests for the Coordinator (membership + INV/ACK)."""

import pytest

from repro.coordination import Invalidation, make_coordinator
from repro.sim import Environment


def run(env, *procs):
    handles = [env.process(p) for p in procs]
    env.run()
    return handles


def test_register_and_live_members():
    env = Environment()
    coord = make_coordinator(env)
    coord.register("d1", "nn1", lambda inv: None)
    coord.register("d1", "nn2", lambda inv: None)
    coord.register("d2", "nn3", lambda inv: None)
    assert coord.live_members("d1") == {"nn1", "nn2"}
    assert coord.live_count("d2") == 1


def test_deregister_removes_member():
    env = Environment()
    coord = make_coordinator(env)
    coord.register("d1", "nn1", lambda inv: None)
    coord.deregister("d1", "nn1")
    assert coord.live_members("d1") == set()


def test_invalidate_delivers_to_all_members():
    env = Environment()
    coord = make_coordinator(env)
    received = []

    def handler(name):
        def inner(inv):
            received.append((name, inv.paths))
        return inner

    coord.register("d1", "nn1", handler("nn1"))
    coord.register("d1", "nn2", handler("nn2"))

    done = []

    def leader(env):
        contacted = yield from coord.invalidate("d1", paths=["/a"])
        done.append((env.now, contacted))

    run(env, leader(env))
    assert sorted(received) == [("nn1", ("/a",)), ("nn2", ("/a",))]
    assert done[0][1] == 2
    assert done[0][0] > 0  # INV + ACK latency elapsed


def test_invalidate_excludes_leader():
    env = Environment()
    coord = make_coordinator(env)
    received = []
    coord.register("d1", "leader", lambda inv: received.append("leader"))
    coord.register("d1", "nn2", lambda inv: received.append("nn2"))

    def leader(env):
        yield from coord.invalidate("d1", paths=["/a"], exclude=["leader"])

    run(env, leader(env))
    assert received == ["nn2"]


def test_invalidate_empty_deployment_completes_immediately():
    env = Environment()
    coord = make_coordinator(env)
    done = []

    def leader(env):
        contacted = yield from coord.invalidate("ghost", paths=["/a"])
        done.append((env.now, contacted))

    run(env, leader(env))
    assert done == [(0, 0)]


def test_dead_member_does_not_block_acks():
    env = Environment()
    coord = make_coordinator(env)
    # nn2's handler never acks because we kill it mid-flight.
    coord.register("d1", "nn1", lambda inv: None)
    coord.register("d1", "nn2", lambda inv: None)
    done = []

    def leader(env):
        yield from coord.invalidate("d1", paths=["/a"])
        done.append(env.now)

    def killer(env):
        yield env.timeout(0.1)  # before delivery latency elapses
        coord.deregister("d1", "nn2")

    run(env, leader(env), killer(env))
    assert done  # completed despite nn2 never ACKing


def test_subtree_invalidation_flag():
    inv = Invalidation(inv_id=1, deployment="d", prefix="/foo")
    assert inv.is_subtree
    inv2 = Invalidation(inv_id=2, deployment="d", paths=("/a",))
    assert not inv2.is_subtree


def test_watch_death_fires():
    env = Environment()
    coord = make_coordinator(env)
    deaths = []
    coord.register("d1", "nn1", lambda inv: None)
    coord.watch_death("nn1", lambda member: deaths.append((env.now, member)))

    def killer(env):
        yield env.timeout(5)
        coord.deregister("d1", "nn1")

    run(env, killer(env))
    assert len(deaths) == 1
    assert deaths[0][1] == "nn1"
    assert deaths[0][0] > 5  # watch latency applied


def test_ndb_coordinator_is_slower():
    env = Environment()
    zk = make_coordinator(env, "zookeeper")
    ndb = make_coordinator(env, "ndb")
    assert ndb.config.publish_ms > zk.config.publish_ms


def test_unknown_kind_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        make_coordinator(env, "etcd")
