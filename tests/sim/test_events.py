"""Unit tests for the DES event primitives."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(10)
        log.append(env.now)
        yield env.timeout(5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [10, 15]


def test_timeout_carries_value():
    env = Environment()
    result = []

    def proc(env):
        value = yield env.timeout(1, value="hello")
        result.append(value)

    env.process(proc(env))
    env.run()
    assert result == ["hello"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter(env):
        value = yield gate
        seen.append((env.now, value))

    def firer(env):
        yield env.timeout(3)
        gate.succeed(42)

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert seen == [(3, 42)]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    def firer(env):
        yield env.timeout(1)
        gate.fail(ValueError("boom"))

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_crashes_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_process_return_value_propagates():
    env = Environment()
    got = []

    def child(env):
        yield env.timeout(2)
        return "child-result"

    def parent(env):
        value = yield env.process(child(env))
        got.append((env.now, value))

    env.process(parent(env))
    env.run()
    assert got == [(2, "child-result")]


def test_process_exception_propagates_to_parent():
    env = Environment()
    caught = []

    def child(env):
        yield env.timeout(1)
        raise KeyError("nope")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError:
            caught.append(env.now)

    env.process(parent(env))
    env.run()
    assert caught == [1]


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(4)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(4, "wake up")]


def test_interrupting_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(10)
        log.append(env.now)

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [15]


def test_allof_waits_for_every_event():
    env = Environment()
    done = []

    def proc(env):
        t1 = env.timeout(3, value="a")
        t2 = env.timeout(7, value="b")
        result = yield AllOf(env, [t1, t2])
        done.append((env.now, list(result.values())))

    env.process(proc(env))
    env.run()
    assert done == [(7, ["a", "b"])]


def test_anyof_fires_on_first():
    env = Environment()
    done = []

    def proc(env):
        t1 = env.timeout(3, value="fast")
        t2 = env.timeout(7, value="slow")
        result = yield AnyOf(env, [t1, t2])
        done.append((env.now, list(result.values())))

    env.process(proc(env))
    env.run()
    assert done == [(3, ["fast"])]


def test_and_or_operators():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(1) & env.timeout(2)
        done.append(env.now)
        yield env.timeout(10) | env.timeout(4)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [2, 6]


def test_empty_allof_triggers_immediately():
    env = Environment()
    done = []

    def proc(env):
        yield AllOf(env, [])
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0]


def test_run_until_time_stops_clock():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1)

    env.process(ticker(env))
    env.run(until=50)
    assert env.now == 50


def test_run_until_event():
    env = Environment()
    gate = env.event()

    def firer(env):
        yield env.timeout(9)
        gate.succeed("finished")

    env.process(firer(env))
    assert env.run(until=gate) == "finished"
    assert env.now == 9


def test_run_until_past_time_rejected():
    env = Environment(initial_time=100)
    with pytest.raises(ValueError):
        env.run(until=50)


def test_deterministic_tie_break_is_fifo():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(5)
        order.append(name)

    for name in "abc":
        env.process(proc(env, name))
    env.run()
    assert order == ["a", "b", "c"]


def test_yield_none_yields_control():
    env = Environment()
    log = []

    def proc(env):
        log.append("before")
        yield None
        log.append("after")
        assert env.now == 0

    env.process(proc(env))
    env.run()
    assert log == ["before", "after"]


def test_waiting_on_already_processed_event():
    env = Environment()
    values = []

    def proc(env):
        done = env.timeout(1, value="x")
        yield env.timeout(5)
        # ``done`` was processed long ago; waiting must still work.
        value = yield done
        values.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert values == [(5, "x")]
