"""Unit tests for Resource, Container and Store."""

import pytest

from repro.sim import Container, Environment, Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grants = []

    def user(env, name, hold):
        with res.request() as req:
            yield req
            grants.append((name, env.now))
            yield env.timeout(hold)

    env.process(user(env, "a", 10))
    env.process(user(env, "b", 10))
    env.process(user(env, "c", 10))
    env.run()
    assert grants == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_release_on_exception():
    env = Environment()
    res = Resource(env, capacity=1)
    grants = []

    def crasher(env):
        try:
            with res.request() as req:
                yield req
                yield env.timeout(5)
                raise ValueError("die")
        except ValueError:
            pass

    def follower(env):
        with res.request() as req:
            yield req
            grants.append(env.now)

    env.process(crasher(env))
    env.process(follower(env))
    env.run()
    assert grants == [5]


def test_resource_resize_up_admits_waiters():
    env = Environment()
    res = Resource(env, capacity=1)
    grants = []

    def user(env, name):
        with res.request() as req:
            yield req
            grants.append((name, env.now))
            yield env.timeout(100)

    def grower(env):
        yield env.timeout(10)
        res.resize(3)

    for name in "abc":
        env.process(user(env, name))
    env.process(grower(env))
    env.run()
    assert grants == [("a", 0), ("b", 10), ("c", 10)]


def test_resource_rejects_bad_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)
    res = Resource(env, capacity=1)
    with pytest.raises(ValueError):
        res.resize(-1)


def test_resource_cancel_pending_request():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def canceller(env):
        req = res.request()
        yield env.timeout(1)
        req.cancel()
        order.append("cancelled")

    def last(env):
        yield env.timeout(2)
        with res.request() as req:
            yield req
            order.append(("last", env.now))

    env.process(holder(env))
    env.process(canceller(env))
    env.process(last(env))
    env.run()
    assert order == ["cancelled", ("last", 10)]


def test_container_get_blocks_until_put():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    log = []

    def consumer(env):
        yield tank.get(30)
        log.append(("got", env.now))

    def producer(env):
        yield env.timeout(5)
        yield tank.put(50)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert log == [("got", 5)]
    assert tank.level == 20


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    log = []

    def producer(env):
        yield tank.put(5)
        log.append(("put", env.now))

    def consumer(env):
        yield env.timeout(7)
        yield tank.get(6)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("put", 7)]
    assert tank.level == 9


def test_container_validates_bounds():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.get(0)
    with pytest.raises(ValueError):
        tank.put(-1)


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer(env):
        for item in "xyz":
            yield env.timeout(1)
            store.put(item)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == ["x", "y", "z"]


def test_store_predicate_get():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get(lambda i: i % 2 == 0)
        got.append(item)

    def producer(env):
        for item in (1, 3, 4, 5):
            yield env.timeout(1)
            store.put(item)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [4]
    assert list(store.items) == [1, 3, 5]


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    assert len(store) == 2
