"""Tests for named RNG streams."""

from repro.sim import RngStreams


def test_streams_are_memoized():
    rngs = RngStreams(seed=1)
    assert rngs.stream("a") is rngs.stream("a")
    assert rngs("a") is rngs.stream("a")


def test_streams_are_independent():
    rngs = RngStreams(seed=1)
    first = [rngs.stream("a").random() for _ in range(5)]
    # Drawing from "b" must not perturb "a"'s future sequence.
    fresh = RngStreams(seed=1)
    fresh.stream("b").random()
    second = [fresh.stream("a").random() for _ in range(5)]
    assert first == second


def test_same_seed_same_sequences():
    a = RngStreams(seed=42)
    b = RngStreams(seed=42)
    assert [a.stream("x").random() for _ in range(3)] == [
        b.stream("x").random() for _ in range(3)
    ]


def test_different_seeds_differ():
    a = RngStreams(seed=1)
    b = RngStreams(seed=2)
    assert a.stream("x").random() != b.stream("x").random()


def test_different_names_differ():
    rngs = RngStreams(seed=1)
    assert rngs.stream("x").random() != rngs.stream("y").random()
