"""Tagged callback representation, O(1) interrupt unsubscription, and
condition edge cases (duplicates, already-processed members).

The kernel stores ``Event.callbacks`` as a tagged union — shared empty
tuple / bare callable / list-with-tombstones / ``None`` (see
``repro.sim.events``) — and interrupt unsubscription must tombstone the
recorded slot instead of ``list.remove``-scanning, or interrupting N
waiters of one event goes quadratic.  These tests pin both the
representation and the scaling.
"""

import time

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt
from repro.sim.events import _NO_CALLBACKS

pytestmark = pytest.mark.kernel


# -- tagged representation -----------------------------------------------

def test_fresh_event_shares_the_empty_tuple():
    env = Environment()
    first, second = Event(env), Event(env)
    assert first.callbacks is _NO_CALLBACKS
    assert second.callbacks is first.callbacks  # shared, no allocation
    assert not first.processed


def test_callbacks_upgrade_tuple_to_callable_to_list():
    env = Environment()
    gate = Event(env)
    woken = []

    def waiter(env, name):
        value = yield gate
        woken.append((name, value))

    env.process(waiter(env, "a"))
    env.run(until=env.timeout(0))
    # One subscriber: a bare callable, not a single-element list.
    assert callable(gate.callbacks)
    assert type(gate.callbacks) is not list

    env.process(waiter(env, "b"))
    env.run(until=env.timeout(1))
    # Two subscribers: upgraded in place to a list.
    assert type(gate.callbacks) is list
    assert len(gate.callbacks) == 2

    gate.succeed("v")
    env.run()
    assert gate.callbacks is None and gate.processed
    assert sorted(woken) == [("a", "v"), ("b", "v")]


def test_interrupt_tombstones_instead_of_removing():
    env = Environment()
    gate = Event(env)
    log = []

    def waiter(env, name):
        try:
            value = yield gate
            log.append((name, value))
        except Interrupt as exc:
            log.append((name, exc.cause))

    procs = [env.process(waiter(env, i)) for i in range(3)]

    def killer(env):
        yield env.timeout(1)
        procs[1].interrupt("mid")

    env.process(killer(env))
    env.run(until=env.timeout(2))
    callbacks = gate.callbacks
    # The middle waiter's slot is tombstoned; the list never shrinks.
    assert type(callbacks) is list and len(callbacks) == 3
    assert callbacks[1] is None
    assert callbacks[0] is not None and callbacks[2] is not None

    gate.succeed("ok")
    env.run()
    assert sorted(log) == [(0, "ok"), (1, "mid"), (2, "ok")]


def test_sole_subscriber_interrupt_resets_to_empty_marker():
    env = Environment()
    gate = Event(env)

    def waiter(env):
        try:
            yield gate
        except Interrupt:
            pass

    proc = env.process(waiter(env))

    def killer(env):
        yield env.timeout(1)
        proc.interrupt()

    env.process(killer(env))
    env.run()
    # Bare-callable form drops back to the shared no-subscriber marker.
    assert gate.callbacks is _NO_CALLBACKS


def test_mass_interrupt_is_not_quadratic():
    """Interrupting every waiter of one hot event must stay ~linear.

    50k waiters subscribe to a single event, then all get interrupted.
    With ``list.remove`` unsubscription this is ~50k * 25k identity
    scans (tens of seconds); with tombstoning it is O(1) per interrupt
    and the whole run takes well under the bound.
    """
    n = 50_000
    env = Environment()
    gate = Event(env)
    survived = []

    def waiter(env):
        try:
            yield gate
        except Interrupt:
            survived.append(1)

    procs = [env.process(waiter(env)) for _ in range(n)]

    def killer(env):
        yield env.timeout(1)
        for proc in procs:
            proc.interrupt()

    env.process(killer(env))
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    assert len(survived) == n
    callbacks = gate.callbacks
    assert type(callbacks) is list and len(callbacks) == n
    assert all(slot is None for slot in callbacks)
    assert wall < 8.0, f"mass interrupt took {wall:.1f}s — quadratic path?"


# -- condition edge cases ------------------------------------------------

def test_allof_with_duplicate_member_counts_each_subscription():
    env = Environment()
    result = []

    def proc(env):
        shared = env.timeout(5, value="v")
        cond = yield AllOf(env, [shared, shared])
        result.append((env.now, list(cond.values())))

    env.process(proc(env))
    env.run()
    # Fires on the single trigger; ConditionValue dedups by identity.
    assert result == [(5, ["v"])]


def test_anyof_with_duplicate_member():
    env = Environment()
    result = []

    def proc(env):
        shared = env.timeout(3, value="x")
        cond = yield AnyOf(env, [shared, shared])
        result.append((env.now, list(cond.values())))

    env.process(proc(env))
    env.run()
    assert result == [(3, ["x"])]


def test_allof_with_already_processed_member():
    env = Environment()
    done = env.event()
    done.succeed("early")
    env.run(until=env.timeout(1))
    assert done.processed
    result = []

    def proc(env):
        late = env.timeout(4, value="late")
        cond = yield AllOf(env, [done, late])
        result.append((env.now, cond[done], cond[late]))

    env.process(proc(env))
    env.run()
    assert result == [(5, "early", "late")]


def test_anyof_with_processed_member_fires_without_waiting():
    env = Environment()
    done = env.event()
    done.succeed(7)
    env.run(until=env.timeout(1))
    never = env.event()
    result = []

    def proc(env):
        cond = yield AnyOf(env, [never, done])
        result.append((env.now, cond[done], never in cond))

    env.process(proc(env))
    env.run()
    assert result == [(1, 7, False)]


def test_allof_with_processed_failed_member_fails():
    env = Environment()
    bad = env.event()
    bad.fail(ValueError("boom"))
    bad.defused()
    env.run(until=env.timeout(1))
    caught = []

    def proc(env):
        try:
            yield AllOf(env, [bad, env.timeout(5)])
        except ValueError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    env.run()
    assert caught == ["boom"]
