"""Property and unit tests for the calendar-queue scheduler.

The load-bearing invariant: for any push/pop interleaving, pop order is
identical to a global ``(time, priority, eid)`` heap — ascending time,
ties broken by priority then insertion order — regardless of bucket
width, ring size, resize activity, or which internal partition (active
bucket, overflow heap, ring, far heap) each entry traversed.
"""

import heapq
import random

import pytest

from repro.sim import CalendarQueue


def _drain(queue):
    out = []
    while True:
        entry = queue.pop()
        if entry is None:
            return out
        out.append(entry)


def _reference_order(entries):
    return sorted(entries, key=lambda e: (e[0], e[1], e[2]))


class TestOrdering:
    def test_empty(self):
        q = CalendarQueue()
        assert q.pop() is None
        assert len(q) == 0
        assert q.peek() == float("inf")

    def test_single(self):
        q = CalendarQueue()
        q.push(3.5, 1, 0, "a")
        assert q.peek() == 3.5
        assert q.pop() == (3.5, 1, 0, "a")
        assert q.pop() is None

    def test_time_then_priority_then_eid(self):
        q = CalendarQueue()
        q.push(1.0, 1, 0, "late-normal")
        q.push(1.0, 0, 1, "late-urgent")
        q.push(0.5, 1, 2, "early")
        q.push(1.0, 1, 3, "late-normal-2")
        assert [e[3] for e in _drain(q)] == [
            "early", "late-urgent", "late-normal", "late-normal-2"
        ]

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("width", [1e-4, 0.5, 100.0])
    def test_random_schedule_matches_heap(self, seed, width):
        rng = random.Random(seed)
        q = CalendarQueue(width=width, ring=8192)
        entries = []
        for eid in range(2000):
            # Mix of clustered near-term, spread, and far-future times.
            roll = rng.random()
            if roll < 0.5:
                t = rng.uniform(0.0, 10.0)
            elif roll < 0.9:
                t = rng.uniform(0.0, 1000.0)
            else:
                t = rng.uniform(0.0, 1e7)  # far beyond any ring window
            entry = (t, rng.choice([0, 1]), eid, f"e{eid}")
            entries.append(entry)
            q.push(*entry)
        assert len(q) == len(entries)
        assert _drain(q) == _reference_order(entries)

    @pytest.mark.parametrize("seed", range(8))
    def test_interleaved_push_pop_matches_heap(self, seed):
        """Advancing-frontier interleaving, as the kernel drives it."""
        rng = random.Random(1000 + seed)
        q = CalendarQueue(width=0.25)
        heap = []
        popped = []
        eid = 0
        now = 0.0
        for _ in range(300):
            for _ in range(rng.randrange(1, 12)):
                # Occasionally schedule exactly at the frontier
                # (delay-0: the overflow-heap path), else ahead of it.
                delay = 0.0 if rng.random() < 0.2 else rng.uniform(0.0, 50.0)
                entry = (now + delay, rng.choice([0, 1]), eid, eid)
                heapq.heappush(heap, entry)
                q.push(*entry)
                eid += 1
            for _ in range(rng.randrange(0, 10)):
                expected = heapq.heappop(heap) if heap else None
                got = q.pop()
                assert got == expected
                if got is None:
                    break
                now = got[0]
                popped.append(got)
        assert _drain(q) == [heapq.heappop(heap) for _ in range(len(heap))]

    def test_same_time_burst_pops_in_insertion_order(self):
        """Models the t=0 process-initialize burst (overflow heap)."""
        q = CalendarQueue()
        for eid in range(5000):
            q.push(0.0, 0, eid, eid)
        assert [e[3] for e in _drain(q)] == list(range(5000))

    def test_push_behind_frontier_pops_immediately(self):
        q = CalendarQueue(width=0.5)
        q.push(100.0, 1, 0, "a")
        assert q.pop() == (100.0, 1, 0, "a")
        # Frontier has advanced to t=100; a push before it must still
        # surface before anything later.
        q.push(200.0, 1, 1, "c")
        q.push(1.0, 1, 2, "b")
        assert [e[3] for e in _drain(q)] == ["b", "c"]


class TestResizeMachinery:
    def test_auto_resize_changes_width_without_reordering(self):
        # Dense schedule with a width far too coarse: after enough
        # pops the one-shot density targeting must shrink the width.
        q = CalendarQueue(width=100.0)
        entries = []
        rng = random.Random(42)
        for eid in range(20000):
            entry = (rng.uniform(0.0, 20.0), 1, eid, eid)
            entries.append(entry)
            q.push(*entry)
        assert _drain(q) == _reference_order(entries)
        assert q.resizes >= 1
        assert q.width < 100.0

    def test_grow_skipped_without_pressure(self):
        # Density drifted far above the grow hysteresis (~192x the
        # width target) but with no actual pressure: every entry is
        # inside the ring window (far heap empty) and the frontier
        # walks only ~1 empty slot per pop.  Growing would be a pure
        # rebuild with no benefit, so the resizer must not fire.
        q = CalendarQueue(width=0.1, ring=1 << 16)
        eid = 0
        t = 0.0
        entries = []
        rng = random.Random(7)
        for _ in range(3 * q._CHECK_POPS):
            t += rng.uniform(0.05, 0.15)  # ~one entry per slot
            entries.append((t, 1, eid, eid))
            eid += 1
        for entry in entries:
            q.push(*entry)
        assert _drain(q) == entries
        assert q.resizes == 0

    def test_far_heap_round_trip(self):
        # Entries beyond the window park in the far heap and must
        # reintegrate exactly when the frontier reaches them.
        q = CalendarQueue(width=0.01, ring=8192)  # window = 81.92
        entries = []
        rng = random.Random(3)
        for eid in range(4000):
            entry = (rng.uniform(0.0, 5000.0), 1, eid, eid)
            entries.append(entry)
            q.push(*entry)
        assert q.stats()["far"] > 0
        assert _drain(q) == _reference_order(entries)

    def test_len_and_stats_track_partitions(self):
        q = CalendarQueue(width=1.0, ring=8192)
        q.push(0.0, 1, 0, "over")      # current bucket
        q.push(10.0, 1, 1, "ring")     # ring window
        q.push(1e9, 1, 2, "far")       # far heap
        assert len(q) == 3
        stats = q.stats()
        assert stats["size"] == 3
        assert stats["far"] == 1
        assert stats["ring_entries"] == 1
        for _ in range(3):
            q.pop()
        assert len(q) == 0
        assert q.stats()["size"] == 0

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            CalendarQueue(width=0.0)
        with pytest.raises(ValueError):
            CalendarQueue(ring=1000)  # not a power of two
