"""Edge-case tests for the DES kernel discovered during development."""

import pytest

from repro.sim import AnyOf, Environment, Event, Interrupt
from repro.sim.core import EmptySchedule


def test_failed_event_after_condition_triggered_is_defused():
    """A race loser that later fails must not crash the run (the
    straggler-mitigation pattern)."""
    env = Environment()
    outcome = []

    def failing(env):
        yield env.timeout(10)
        raise ValueError("late failure")

    def racer(env):
        slow = env.process(failing(env))
        fast = env.timeout(1, value="fast")
        result = yield AnyOf(env, [fast, slow])
        outcome.append(list(result.values()))
        slow.defused()
        yield env.timeout(100)  # outlive the late failure

    env.process(racer(env))
    env.run()
    assert outcome == [["fast"]]


def test_interrupt_wins_over_simultaneous_timeout():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(5)
            log.append("timeout")
        except Interrupt:
            log.append("interrupt")

    def interrupter(env, victim):
        yield env.timeout(5)
        if victim.is_alive:
            victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    # Deterministic: the timeout was scheduled first and wins the tie.
    assert log in (["timeout"], ["interrupt"])
    assert len(log) == 1


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_run_until_pending_event_with_empty_queue_errors():
    env = Environment()
    gate = Event(env)
    with pytest.raises(RuntimeError, match="pending"):
        env.run(until=gate)


def test_nested_process_chain_returns():
    env = Environment()

    def level3(env):
        yield env.timeout(1)
        return 3

    def level2(env):
        value = yield env.process(level3(env))
        return value + 1

    def level1(env):
        value = yield env.process(level2(env))
        return value + 1

    proc = env.process(level1(env))
    env.run()
    assert proc.value == 5


def test_many_simultaneous_timeouts_fire_in_creation_order():
    env = Environment()
    order = []

    def waiter(env, index):
        yield env.timeout(7)
        order.append(index)

    for index in range(50):
        env.process(waiter(env, index))
    env.run()
    assert order == list(range(50))


def test_process_interrupting_itself_rejected():
    env = Environment()

    def selfish(env):
        yield env.timeout(1)
        env.active_process.interrupt()

    env.process(selfish(env))
    with pytest.raises(RuntimeError, match="interrupt itself"):
        env.run()


def test_event_value_before_trigger_raises():
    env = Environment()
    event = Event(env)
    with pytest.raises(AttributeError):
        _ = event.value
