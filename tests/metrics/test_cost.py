"""Unit tests for the cost models (Figure 9 pricing)."""

import pytest

from repro.metrics import (
    LAMBDA_GB_SECOND_USD,
    LAMBDA_PER_REQUEST_USD,
    VM_VCPU_SECOND_USD,
    lambda_cost,
    performance_per_cost,
    simplified_cost,
    vm_cost,
)


def test_lambda_cost_formula():
    # One instance busy 10 s with 30 GB + 1M requests.
    cost = lambda_cost([10_000.0], 1_000_000, 30.0)
    expected = 10 * 30 * LAMBDA_GB_SECOND_USD + 0.20
    assert cost == pytest.approx(expected)


def test_lambda_cost_zero_when_idle():
    assert lambda_cost([0.0, 0.0], 0, 30.0) == 0.0


def test_simplified_charges_provisioned_time():
    pay_per_use = lambda_cost([1_000.0], 100, 30.0)
    provisioned = simplified_cost([60_000.0], 100, 30.0)
    assert provisioned > pay_per_use


def test_vm_cost_matches_paper_calibration():
    # Figure 9: 512 vCPUs for 300 s cost $2.50.
    assert vm_cost(512.0, 300_000.0) == pytest.approx(2.50)


def test_vm_rate_constant():
    assert VM_VCPU_SECOND_USD == pytest.approx(2.50 / (300 * 512))


def test_performance_per_cost():
    assert performance_per_cost(1_000.0, 0.5) == pytest.approx(2_000.0)
    assert performance_per_cost(1_000.0, 0.0) == 0.0


def test_per_request_price():
    assert LAMBDA_PER_REQUEST_USD == pytest.approx(0.20 / 1e6)
