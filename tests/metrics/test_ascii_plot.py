"""Unit tests for the terminal plotting helpers."""

from repro.metrics.ascii_plot import bar_chart, line_plot, sparkline


def test_sparkline_shape():
    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4
    assert line[0] == "▁"
    assert line[-1] == "█"


def test_sparkline_flat_and_empty():
    assert sparkline([]) == ""
    assert sparkline([5, 5, 5]) == "▁▁▁"


def test_bar_chart_alignment_and_peak():
    chart = bar_chart([("alpha", 100.0), ("b", 50.0)], width=10)
    lines = chart.split("\n")
    assert len(lines) == 2
    assert lines[0].startswith("alpha")
    assert lines[0].count("█") == 10
    assert lines[1].count("█") == 5


def test_bar_chart_zero_and_empty():
    assert bar_chart([]) == ""
    chart = bar_chart([("x", 0.0)], width=10)
    assert "█" not in chart


def test_line_plot_contains_markers_and_legend():
    plot = line_plot({
        "lambda": [(0, 0), (10, 100)],
        "hops": [(0, 50), (10, 50)],
    }, width=20, height=6)
    assert "l" in plot and "h" in plot
    assert "l = lambda" in plot
    assert "100" in plot  # y-axis max label


def test_line_plot_empty():
    assert line_plot({}) == ""


def test_sparkline_single_value():
    assert sparkline([7.0]) == "▁"


def test_sparkline_negative_values_normalise():
    line = sparkline([-10.0, 0.0, 10.0])
    assert line[0] == "▁" and line[-1] == "█"


def test_bar_chart_all_zero_values():
    # A zero peak must not divide by zero; bars are just empty.
    chart = bar_chart([("a", 0.0), ("b", 0.0)], width=10)
    assert "█" not in chart
    assert len(chart.split("\n")) == 2


def test_line_plot_single_point_series():
    plot = line_plot({"s": [(5.0, 5.0)]}, width=12, height=4)
    assert "s" in plot
    assert "s = s" in plot


# -- degenerate input: NaN / ±inf ------------------------------------
#
# Detector math feeds these helpers windows where a rate divides by
# zero ops or a baseline never formed; each renderer must degrade,
# not raise.

NAN = float("nan")
INF = float("inf")


def test_sparkline_nan_renders_hole():
    line = sparkline([0.0, NAN, 2.0])
    assert len(line) == 3
    assert line[1] == "·"
    assert line[0] == "▁" and line[2] == "█"


def test_sparkline_inf_renders_hole_without_skewing_scale():
    line = sparkline([0.0, INF, 1.0, -INF])
    assert line[1] == "·" and line[3] == "·"
    # Scale comes from the finite samples only: 0 → low, 1 → high.
    assert line[0] == "▁" and line[2] == "█"


def test_sparkline_all_nonfinite():
    assert sparkline([NAN, INF, -INF]) == "···"


def test_bar_chart_nan_row_has_no_bar():
    chart = bar_chart([("ok", 10.0), ("bad", NAN)], width=10)
    lines = chart.split("\n")
    assert lines[0].count("█") == 10
    assert "█" not in lines[1]
    assert "nan" in lines[1]


def test_bar_chart_inf_does_not_flatten_finite_bars():
    chart = bar_chart([("ok", 10.0), ("hot", INF)], width=10)
    lines = chart.split("\n")
    # Peak is the finite 10.0, so "ok" still fills the width.
    assert lines[0].count("█") == 10
    assert "inf" in lines[1]


def test_bar_chart_all_nonfinite():
    chart = bar_chart([("a", NAN), ("b", -INF)], width=10)
    assert "█" not in chart
    assert len(chart.split("\n")) == 2


def test_line_plot_drops_nonfinite_points():
    plot = line_plot({
        "s": [(0.0, 0.0), (5.0, NAN), (INF, 3.0), (10.0, 100.0)],
    }, width=20, height=6)
    assert "s" in plot
    assert "100" in plot


def test_line_plot_all_nonfinite_is_empty():
    assert line_plot({"s": [(NAN, 1.0), (2.0, INF)]}) == ""
