"""Unit tests for metrics recording and statistics."""

import pytest

from repro.metrics import MetricsRecorder, latency_cdf, percentile


def test_record_and_latency():
    recorder = MetricsRecorder()
    recorder.record("read file", 0.0, 2.0)
    recorder.record("read file", 1.0, 5.0)
    assert len(recorder) == 2
    assert recorder.average_latency() == pytest.approx(3.0)
    assert recorder.average_latency("read file") == pytest.approx(3.0)
    assert recorder.average_latency("stat file/dir") == 0.0


def test_throughput_timeline_bins():
    recorder = MetricsRecorder()
    for end in (100, 200, 900, 1_500):
        recorder.record("read file", 0.0, float(end))
    timeline = recorder.throughput_timeline(1_000.0)
    assert timeline[0] == (0.0, 3.0)
    assert timeline[1] == (1_000.0, 1.0)


def test_average_and_peak_throughput():
    recorder = MetricsRecorder()
    for index in range(10):
        recorder.record("read file", 0.0, 100.0 * (index + 1))
    assert recorder.average_throughput(1_000.0) == pytest.approx(10.0)
    assert recorder.peak_throughput(1_000.0) == pytest.approx(10.0)


def test_empty_recorder():
    recorder = MetricsRecorder()
    assert recorder.throughput_timeline() == []
    assert recorder.average_throughput() == 0.0
    assert recorder.peak_throughput() == 0.0
    assert recorder.cache_hit_ratio() == 0.0


def test_cache_hit_ratio_and_breakdown():
    recorder = MetricsRecorder()
    recorder.record("read file", 0, 1, cache_hit=True)
    recorder.record("read file", 0, 1, cache_hit=False)
    recorder.record("ls file/dir", 0, 1, cache_hit=True)
    assert recorder.cache_hit_ratio() == pytest.approx(2 / 3)
    assert recorder.ops_breakdown() == {"read file": 2, "ls file/dir": 1}


def test_read_only_latency_filter():
    recorder = MetricsRecorder()
    recorder.record("read file", 0, 1)
    recorder.record("create file", 0, 100)
    reads = recorder.latencies(read_only=True)
    assert reads == [1]


def test_timeline_accepts_out_of_order_records():
    # Records arrive in completion order of concurrent clients, which
    # is not sorted by end_ms; the timeline must not care.
    ordered = MetricsRecorder()
    shuffled = MetricsRecorder()
    ends = [100.0, 200.0, 900.0, 1_500.0]
    for end in ends:
        ordered.record("read file", 0.0, end)
    for end in (1_500.0, 100.0, 900.0, 200.0):
        shuffled.record("read file", 0.0, end)
    assert shuffled.throughput_timeline(1_000.0) == \
        ordered.throughput_timeline(1_000.0)
    assert shuffled.peak_throughput(1_000.0) == ordered.peak_throughput(1_000.0)


def test_timeline_bin_boundaries():
    # bisect_right: an op ending exactly at a bin edge t+bin belongs
    # to that bin, and is excluded from the next one ((t, t+bin]).
    recorder = MetricsRecorder()
    recorder.record("read file", 0.0, 1_000.0)
    recorder.record("read file", 0.0, 2_000.0)
    timeline = recorder.throughput_timeline(1_000.0)
    assert timeline == [(0.0, 1.0), (1_000.0, 1.0), (2_000.0, 0.0)]


def test_timeline_op_at_time_zero_is_never_counted():
    # A record ending exactly at t=0 falls outside every (t, t+bin]
    # interval — the documented edge of the half-open binning.
    recorder = MetricsRecorder()
    recorder.record("read file", 0.0, 0.0)
    assert recorder.throughput_timeline(1_000.0) == [(0.0, 0.0)]


def test_single_record_statistics():
    recorder = MetricsRecorder()
    recorder.record("read file", 10.0, 35.0)
    assert recorder.average_latency() == pytest.approx(25.0)
    assert recorder.average_throughput() == pytest.approx(1_000.0 / 35.0)
    assert recorder.throughput_timeline(1_000.0) == [(0.0, 1.0)]
    cdf = latency_cdf(recorder.latencies())
    assert cdf == [(25.0, 1.0)]


def test_average_throughput_zero_duration():
    recorder = MetricsRecorder()
    recorder.record("read file", 0.0, 0.0)
    assert recorder.average_throughput() == 0.0
    assert recorder.average_throughput(0.0) == 0.0


def test_percentile_interpolation():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_latency_cdf_monotone():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    cdf = latency_cdf(values, points=5)
    xs = [x for x, _ in cdf]
    ys = [y for _, y in cdf]
    assert xs == sorted(xs)
    assert ys == sorted(ys)
    assert ys[-1] == 1.0
    assert latency_cdf([]) == []


def test_percentile_single_sample_any_q():
    for q in (0, 37.5, 100):
        assert percentile([42.0], q) == 42.0


def test_percentile_extremes_hit_min_max():
    values = [5.0, 1.0, 9.0, 3.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 9.0


def test_percentile_rejects_bad_q_and_empty():
    with pytest.raises(ValueError):
        percentile([1.0, 2.0], -0.001)
    with pytest.raises(ValueError):
        percentile([1.0, 2.0], 100.001)
    with pytest.raises(ValueError):
        percentile([], 0)


def test_percentile_unsorted_input():
    values = [30.0, 10.0, 20.0]
    assert percentile(values, 50) == 20.0
