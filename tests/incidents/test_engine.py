"""AlertEngine unit tests over synthetic telemetry series."""

import pytest

from repro.incidents import (
    AlertEngine,
    AnomalyRule,
    BurnRateRule,
    Signal,
    ThresholdRule,
)
from repro.telemetry import MetricsRegistry, TimeSeries

pytestmark = pytest.mark.incident


def _series(points):
    ts = TimeSeries()
    for t, values in points:
        ts.append(t, values)
    return ts


def _gauge_rule(threshold=5.0, **kwargs):
    return ThresholdRule(
        name="depth-high",
        signal=Signal("depth", mode="gauge"),
        threshold=threshold, op=">", **kwargs,
    )


def test_threshold_opens_and_resolves():
    engine = AlertEngine([_gauge_rule()])
    alerts = engine.replay(_series([
        (0.0, {"depth": 1.0}),
        (100.0, {"depth": 10.0}),
        (200.0, {"depth": 2.0}),
    ]))
    assert len(alerts) == 1
    alert = alerts[0]
    assert alert.rule == "depth-high"
    assert alert.started_ms == 100.0
    assert alert.ended_ms == 200.0
    assert alert.resolved
    assert alert.value == 10.0


def test_threshold_sustain_window_backdates_alert_start():
    engine = AlertEngine([_gauge_rule(for_ms=150.0)])
    alerts = engine.replay(_series([
        (0.0, {"depth": 1.0}),
        (100.0, {"depth": 10.0}),   # pending starts here
        (200.0, {"depth": 10.0}),   # 100 ms sustained — not yet
        (300.0, {"depth": 10.0}),   # 200 ms sustained — fires
    ]))
    assert len(alerts) == 1
    assert alerts[0].started_ms == 100.0


def test_threshold_sustain_resets_on_dip():
    engine = AlertEngine([_gauge_rule(for_ms=150.0)])
    alerts = engine.replay(_series([
        (0.0, {"depth": 10.0}),
        (100.0, {"depth": 1.0}),    # dip clears the pending window
        (200.0, {"depth": 10.0}),
        (300.0, {"depth": 10.0}),
    ]))
    # Neither pending stretch reached 150 ms before the series ended.
    assert alerts == []


def test_data_gap_keeps_open_alert_open():
    # A "mean" signal over an interval with zero new observations
    # yields None (gap): the open alert must neither close nor flap —
    # nobody completing an op is not evidence the latency recovered.
    rule = ThresholdRule(
        name="lat-high",
        signal=Signal("op_latency_ms", mode="mean"),
        threshold=5.0, op=">",
    )
    engine = AlertEngine([rule])
    alerts = engine.replay(_series([
        (0.0, {"op_latency_ms_sum": 0.0, "op_latency_ms_count": 0.0}),
        (100.0, {"op_latency_ms_sum": 100.0, "op_latency_ms_count": 10.0}),
        (200.0, {"op_latency_ms_sum": 100.0, "op_latency_ms_count": 10.0}),
        (300.0, {"op_latency_ms_sum": 104.0, "op_latency_ms_count": 12.0}),
    ]))
    # t=100: interval mean 10 → opens.  t=200: zero new ops → gap,
    # stays open.  t=300: interval mean 2 → closes.
    assert len(alerts) == 1
    assert alerts[0].started_ms == 100.0
    assert alerts[0].ended_ms == 300.0


def test_anomaly_fires_on_spike_and_recovers_against_frozen_baseline():
    rule = AnomalyRule(
        name="g-anomaly", signal=Signal("g", mode="gauge"),
        z=3.0, alpha=0.5, warmup=3, min_delta=1.0,
    )
    engine = AlertEngine([rule])
    points = [(i * 100.0, {"g": 10.0}) for i in range(6)]
    points.append((600.0, {"g": 100.0}))   # spike → fires
    points.append((700.0, {"g": 120.0}))   # still anomalous (peak)
    points.append((800.0, {"g": 10.0}))    # back inside the old band
    alerts = engine.replay(_series(points))
    assert len(alerts) == 1
    alert = alerts[0]
    assert alert.started_ms == 600.0
    assert alert.ended_ms == 800.0
    assert alert.peak_value == 120.0


def test_anomaly_min_delta_guards_flat_signals():
    # Near-zero variance would z-explode on a trivial wiggle; the
    # absolute min_delta floor keeps it quiet.
    rule = AnomalyRule(
        name="g-anomaly", signal=Signal("g", mode="gauge"),
        z=3.0, alpha=0.5, warmup=3, min_delta=1.0,
    )
    engine = AlertEngine([rule])
    points = [(i * 100.0, {"g": 10.0}) for i in range(6)]
    points.append((600.0, {"g": 10.5}))
    assert engine.replay(_series(points)) == []


def test_burn_rate_stops_paging_when_short_window_drains():
    rule = BurnRateRule(
        name="burn",
        bad=Signal("ops_failed_total", mode="delta"),
        total=Signal("ops_total", mode="delta"),
        error_budget=0.1, long_ms=1_000.0, short_ms=200.0, factor=2.0,
    )
    engine = AlertEngine([rule])
    alerts = engine.replay(_series([
        (0.0, {"ops_failed_total": 0.0, "ops_total": 0.0}),
        (100.0, {"ops_failed_total": 10.0, "ops_total": 10.0}),  # hot
        (200.0, {"ops_failed_total": 10.0, "ops_total": 20.0}),
        (400.0, {"ops_failed_total": 10.0, "ops_total": 30.0}),
    ]))
    assert len(alerts) == 1
    alert = alerts[0]
    assert alert.started_ms == 100.0
    # At t=400 the long window still burns >= 2x (10/40 over budget
    # 0.1), but the short window is clean — the page must stop.
    assert alert.ended_ms == 400.0


def test_finish_closes_still_firing_alert_unresolved():
    engine = AlertEngine([_gauge_rule()])
    engine.observe(_series([(0.0, {"depth": 10.0})]))
    assert engine.firing
    alerts = engine.finish(500.0)
    assert len(alerts) == 1
    assert alerts[0].ended_ms == 500.0
    assert not alerts[0].resolved
    assert not engine.firing


def test_observe_is_incremental_and_matches_replay():
    ts = _series([
        (0.0, {"depth": 1.0}),
        (100.0, {"depth": 10.0}),
        (200.0, {"depth": 1.0}),
    ])
    online = AlertEngine([_gauge_rule()])
    # Feed the same (growing) series one sample at a time, re-calling
    # observe with the full prefix — the cursor must not double-count.
    grow = TimeSeries()
    for t, values in ts.samples:
        grow.append(t, values)
        online.observe(grow)
    online.finish(200.0)
    offline = AlertEngine([_gauge_rule()])
    offline.replay(ts)
    assert [a.as_dict() for a in online.alerts] == \
        [a.as_dict() for a in offline.alerts]


def test_registry_mirror_tracks_firing_state():
    registry = MetricsRegistry()
    engine = AlertEngine([_gauge_rule()], registry=registry)
    engine.observe(_series([(0.0, {"depth": 10.0})]))
    collected = registry.collect()
    assert collected['alerts_firing{rule="depth-high"}'] == 1.0
    assert collected[
        'alerts_fired_total{rule="depth-high",severity="page"}'] == 1.0
    engine.finish(100.0)
    assert registry.collect()['alerts_firing{rule="depth-high"}'] == 0.0


def test_duplicate_rule_names_rejected():
    with pytest.raises(ValueError, match="duplicate rule name"):
        AlertEngine([_gauge_rule(), _gauge_rule()])
