"""Root-cause correlator: windows, scoring terms, ranking contract."""

import pytest

from repro.incidents import Evidence, build_report, rank_suspects, stage_shift
from repro.incidents.detect import Alert
from repro.telemetry import TimeSeries

pytestmark = pytest.mark.incident


def _fault(t, kind, action):
    return {"time_ms": t, "kind": kind, "action": action, "detail": ""}


class _IncidentStub:
    def __init__(self, started_ms, ended_ms, rules=()):
        self.started_ms = started_ms
        self.ended_ms = ended_ms
        self.rules = list(rules)


def test_fault_windows_pair_edges_and_leave_open_ends():
    evidence = Evidence(fault_log=[
        _fault(100.0, "tcp_sever", "activate"),
        _fault(400.0, "tcp_sever", "deactivate"),
        _fault(900.0, "ack_loss", "activate"),   # never deactivates
    ])
    windows = evidence.fault_windows
    assert ("tcp_sever", 100.0, 400.0) in windows
    assert ("ack_loss", 900.0, float("inf")) in windows


def test_rank_prefers_temporally_matching_fault():
    evidence = Evidence(fault_log=[
        _fault(1_000.0, "tcp_sever", "activate"),
        _fault(2_000.0, "tcp_sever", "deactivate"),
        _fault(50_000.0, "ack_loss", "activate"),
        _fault(51_000.0, "ack_loss", "deactivate"),
    ])
    incident = _IncidentStub(1_500.0, 2_500.0, rules=["retry-spike"])
    suspects = rank_suspects(incident, evidence)
    assert suspects[0].kind == "fault:tcp_sever"
    tcp = suspects[0]
    ack = next(s for s in suspects if s.kind == "fault:ack_loss")
    assert tcp.score > ack.score
    # The distant fault keeps its log prior but gets no time credit.
    assert ack.score == pytest.approx(0.5)


def test_alert_signature_breaks_time_ties():
    # Both faults overlap the incident; only tcp_sever's signature
    # contains the firing rules.
    evidence = Evidence(fault_log=[
        _fault(1_000.0, "tcp_sever", "activate"),
        _fault(2_000.0, "tcp_sever", "deactivate"),
        _fault(1_000.0, "disk_slow", "activate"),
        _fault(2_000.0, "disk_slow", "deactivate"),
    ])
    incident = _IncidentStub(
        1_200.0, 2_200.0, rules=["connection-churn", "reconnect-spike"],
    )
    suspects = rank_suspects(incident, evidence)
    assert suspects[0].kind == "fault:tcp_sever"
    assert any("alert signature" in e for e in suspects[0].evidence)


def test_fault_suspect_outranks_circumstantial_evidence():
    # Even with a screaming autoscaler gap in the window, the injected
    # fault's 0.5 prior keeps it on top — the detection-gate contract.
    ts = TimeSeries()
    ts.append(1_000.0, {"fleet_desired_namenodes": 8.0,
                        "fleet_actual_namenodes": 2.0})
    ts.append(1_500.0, {"fleet_desired_namenodes": 8.0,
                        "fleet_actual_namenodes": 2.0})
    evidence = Evidence(
        fault_log=[_fault(900.0, "capacity_crunch", "activate"),
                   _fault(2_000.0, "capacity_crunch", "deactivate")],
        timeseries=ts,
    )
    incident = _IncidentStub(1_000.0, 1_800.0, rules=["fleet-gap"])
    suspects = rank_suspects(incident, evidence)
    assert suspects[0].kind == "fault:capacity_crunch"
    gap = next(s for s in suspects if s.kind == "autoscaler_gap")
    assert gap.score <= 0.45
    assert not gap.is_fault
    assert suspects[0].fault_kind == "capacity_crunch"


def test_no_evidence_yields_no_suspects():
    assert rank_suspects(_IncidentStub(0.0, 100.0), Evidence()) == []


def test_stage_shift_detects_critical_path_move():
    class Op:
        def __init__(self, start, end, stages):
            self.start_ms = start
            self.end_ms = end
            self.stages = stages

    class Profile:
        ops = [
            Op(0.0, 50.0, {"namenode": 8.0, "store": 2.0}),
            Op(60.0, 110.0, {"namenode": 8.0, "store": 2.0}),
            # Inside the window the store stage dominates.
            Op(1_000.0, 1_050.0, {"namenode": 2.0, "store": 8.0}),
        ]

    shift = stage_shift(Profile(), 900.0, 1_100.0)
    assert shift["store"] > 0.4
    assert shift["namenode"] < 0.0


def test_stage_shift_empty_populations():
    class Profile:
        ops = []

    assert stage_shift(Profile(), 0.0, 100.0) == {}


def test_build_report_integrates_ranking():
    alerts = [Alert(rule="ack-latency-anomaly", severity="page",
                    condition="", started_ms=1_100.0, ended_ms=1_400.0)]
    evidence = Evidence(fault_log=[
        _fault(1_000.0, "ack_loss", "activate"),
        _fault(1_600.0, "ack_loss", "deactivate"),
    ])
    report = build_report(alerts, evidence, scenario="s",
                          first_fault_at_ms=1_000.0, end_ms=2_000.0)
    top = report.incidents[0].top_suspect
    assert top.fault_kind == "ack_loss"
    assert top.score > 0.75  # prior + full time match + signature hit
