"""The rule DSL: validation, JSON round-trips, ruleset registry."""

import pytest

from repro.incidents import (
    AnomalyRule,
    BurnRateRule,
    Signal,
    ThresholdRule,
    default_rules,
    get_ruleset,
    load_rules,
    register_ruleset,
    rule_from_dict,
    rule_to_dict,
    rules_to_json,
    save_rules,
)

pytestmark = pytest.mark.incident


# -- Signal validation --------------------------------------------------

def test_signal_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown signal mode"):
        Signal("ops_total", mode="median")


def test_signal_two_family_modes_need_divisor():
    for mode in ("ratio", "frac", "gap"):
        with pytest.raises(ValueError, match="needs a divisor"):
            Signal("a", mode=mode)
    # With a divisor they construct fine.
    Signal("a", mode="ratio", divisor="b")


def test_signal_needs_metric():
    with pytest.raises(ValueError, match="needs a metric"):
        Signal("", mode="gauge")


# -- rule validation ----------------------------------------------------

def test_threshold_rule_validates_op_and_severity():
    signal = Signal("ops_total", mode="delta")
    with pytest.raises(ValueError, match="op must be"):
        ThresholdRule(name="r", signal=signal, threshold=1.0, op=">=")
    with pytest.raises(ValueError, match="unknown severity"):
        ThresholdRule(name="r", signal=signal, threshold=1.0,
                      severity="critical")
    with pytest.raises(ValueError, match="for_ms"):
        ThresholdRule(name="r", signal=signal, threshold=1.0, for_ms=-1.0)


def test_anomaly_rule_validates_parameters():
    signal = Signal("ops_total", mode="rate")
    with pytest.raises(ValueError, match="z must be"):
        AnomalyRule(name="r", signal=signal, z=0.0)
    with pytest.raises(ValueError, match="alpha"):
        AnomalyRule(name="r", signal=signal, alpha=0.0)
    with pytest.raises(ValueError, match="warmup"):
        AnomalyRule(name="r", signal=signal, warmup=1)
    with pytest.raises(ValueError, match="direction"):
        AnomalyRule(name="r", signal=signal, direction="sideways")


def test_burn_rate_rule_validates_windows_and_budget():
    bad = Signal("ops_failed_total", mode="delta")
    total = Signal("ops_total", mode="delta")
    with pytest.raises(ValueError, match="error_budget"):
        BurnRateRule(name="r", bad=bad, total=total, error_budget=1.5)
    with pytest.raises(ValueError, match="short window"):
        BurnRateRule(name="r", bad=bad, total=total,
                     long_ms=1_000.0, short_ms=2_000.0)
    with pytest.raises(ValueError, match="factor"):
        BurnRateRule(name="r", bad=bad, total=total, factor=0.0)


# -- JSON round-trips ---------------------------------------------------

def test_every_default_rule_roundtrips_through_json():
    for rule in default_rules():
        clone = rule_from_dict(rule_to_dict(rule))
        assert clone == rule, rule.name


def test_rule_from_dict_rejects_unknown_type_and_fields():
    with pytest.raises(ValueError, match="unknown rule type"):
        rule_from_dict({"type": "fancy", "name": "r"})
    with pytest.raises(ValueError):
        rule_from_dict({
            "type": "threshold", "name": "r",
            "signal": {"metric": "a", "mode": "gauge"},
            "threshold": 1.0, "bogus_field": 3,
        })


def test_save_and_load_rules_roundtrip(tmp_path):
    path = str(tmp_path / "rules.json")
    rules = default_rules()
    save_rules(rules, path)
    assert load_rules(path) == rules


def test_load_rules_rejects_duplicate_names():
    entry = rule_to_dict(default_rules()[0])
    with pytest.raises(ValueError, match="duplicate rule name"):
        load_rules({"rules": [entry, entry]})


def test_rules_to_json_is_versioned():
    import json
    doc = json.loads(rules_to_json(default_rules()))
    assert doc["version"] == 1
    assert len(doc["rules"]) == len(default_rules())


# -- ruleset registry ---------------------------------------------------

def test_default_ruleset_is_registered():
    names = {rule.name for rule in get_ruleset("default")}
    assert "error-burn-fast" in names
    assert "instance-terminations" in names


def test_register_ruleset_and_unknown_lookup():
    register_ruleset("just-burn", lambda: [
        BurnRateRule(
            name="burn",
            bad=Signal("ops_failed_total", mode="delta"),
            total=Signal("ops_total", mode="delta"),
        ),
    ])
    assert [rule.name for rule in get_ruleset("just-burn")] == ["burn"]
    with pytest.raises(KeyError, match="unknown ruleset"):
        get_ruleset("nope")


def test_ruleset_registry_is_hermetic_between_tests():
    # The conftest snapshot restores RULESETS; whichever order this
    # runs in, the test registration above must not be visible.
    from repro.incidents.rules import RULESETS
    assert set(RULESETS) == {"default"} or "just-burn" not in RULESETS
