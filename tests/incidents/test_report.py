"""Grouping, MTTD/MTTR math, JSON round-trip, and renderings."""

import pytest

from repro.incidents import (
    Alert,
    Evidence,
    IncidentReport,
    build_report,
    group_alerts,
    load_report,
)

pytestmark = pytest.mark.incident


def _alert(rule, start, end, severity="page", resolved=True):
    return Alert(rule=rule, severity=severity, condition=f"{rule} cond",
                 started_ms=start, ended_ms=end, resolved=resolved)


def test_group_alerts_folds_overlapping_windows():
    incidents = group_alerts([
        _alert("a", 100.0, 500.0),
        _alert("b", 400.0, 900.0),    # overlaps a
        _alert("c", 5_000.0, 5_100.0),  # far away: new incident
    ])
    assert [len(i.alerts) for i in incidents] == [2, 1]
    assert incidents[0].started_ms == 100.0
    assert incidents[0].ended_ms == 900.0
    assert incidents[0].rules == ["a", "b"]
    assert incidents[1].index == 1


def test_group_alerts_bridges_small_gaps_only():
    near = group_alerts([
        _alert("a", 0.0, 100.0),
        _alert("b", 900.0, 1_000.0),  # 800 ms gap < default 1000
    ])
    assert len(near) == 1
    far = group_alerts([
        _alert("a", 0.0, 100.0),
        _alert("b", 1_200.0, 1_300.0),  # 1100 ms gap > default 1000
    ])
    assert len(far) == 2


def test_group_alerts_still_firing_extends_to_run_end():
    incidents = group_alerts(
        [Alert(rule="a", severity="page", condition="", started_ms=50.0)],
        end_ms=700.0,
    )
    assert incidents[0].ended_ms == 700.0


def test_incident_severity_and_mttr():
    incidents = group_alerts([
        _alert("a", 100.0, 500.0, severity="warn"),
        _alert("b", 200.0, 900.0, severity="page"),
    ])
    incident = incidents[0]
    assert incident.severity == "page"
    assert incident.mttr_ms == 800.0
    assert incident.resolved


def test_build_report_mttd_from_first_fault():
    report = build_report(
        [_alert("a", 1_200.0, 1_500.0)],
        Evidence(),
        scenario="x", seed=3, first_fault_at_ms=1_000.0, end_ms=2_000.0,
    )
    assert report.detected
    assert report.incidents[0].mttd_ms == 200.0
    assert report.mttd_ms == 200.0


def test_build_report_without_faults_has_no_mttd():
    report = build_report([_alert("a", 100.0, 200.0)], end_ms=500.0)
    assert report.incidents[0].mttd_ms is None
    assert report.mttd_ms is None


def test_incident_json_roundtrips_through_loader(tmp_path):
    report = build_report(
        [
            _alert("a", 100.0, 500.0, severity="warn"),
            _alert("b", 400.0, None, resolved=False),
        ],
        Evidence(fault_log=[
            {"time_ms": 50.0, "kind": "tcp_sever", "action": "activate",
             "detail": ""},
            {"time_ms": 600.0, "kind": "tcp_sever", "action": "deactivate",
             "detail": ""},
        ]),
        scenario="roundtrip", seed=7, first_fault_at_ms=50.0, end_ms=1_000.0,
    )
    path = str(tmp_path / "incidents.json")
    report.save(path)
    loaded = load_report(path)
    assert loaded.as_dict() == report.as_dict()
    # Spot-check the deep structure survived, not just the dict form.
    assert loaded.incidents[0].alerts[1].ended_ms is None
    assert not loaded.incidents[0].resolved
    assert loaded.incidents[0].top_suspect.kind == "fault:tcp_sever"


def test_render_terminal_and_markdown():
    report = build_report(
        [_alert("a", 100.0, 500.0)],
        Evidence(fault_log=[
            {"time_ms": 50.0, "kind": "ack_loss", "action": "activate",
             "detail": ""},
        ]),
        scenario="demo", first_fault_at_ms=50.0, end_ms=1_000.0,
    )
    text = report.render()
    assert "incident #0" in text
    assert "MTTD 50 ms" in text
    assert "ack_loss" in text
    md = report.render_markdown()
    assert md.startswith("# Incident report")
    assert "| `a` |" in md
    assert "| 1 |" in md  # suspect table rank column


def test_render_empty_report():
    report = IncidentReport(scenario="clean")
    assert "no incidents detected" in report.render()
    assert "No incidents detected." in report.render_markdown()
