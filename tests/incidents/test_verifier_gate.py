"""Gate 6 (detection) unit tests against stub engines and reports.

The end-to-end behavior (real chaos runs with ``--detect``) lives in
test_detection_gate.py; here the gate's decision table is exercised
in isolation: detector-off no-op, false-positive control, missed
detection, misattribution, late detection, and the happy path.
"""

import pytest

from repro.chaos import ChaosVerifier, RecoverySLO
from repro.incidents import Alert, Evidence, build_report

pytestmark = pytest.mark.incident


class _SpecStub:
    def __init__(self, kind):
        self.kind = kind


class _ScenarioStub:
    def __init__(self, *kinds):
        self.faults = [_SpecStub(kind) for kind in kinds]


class _EngineStub:
    """Just enough ChaosEngine surface for the other gates to skip."""

    def __init__(self, *kinds):
        self.scenario = _ScenarioStub(*kinds)
        self.first_fault_at_ms = 1_000.0 if kinds else float("inf")
        self.faults_clear_at_ms = 2_000.0 if kinds else 0.0
        self.log = []


def _report(kinds=("ack_loss",), alert_rule="ack-latency-anomaly",
            fault_at=1_000.0, alert_at=1_200.0):
    """An incident report whose top suspect is the injected fault."""
    fault_log = []
    for kind in kinds:
        fault_log.append({"time_ms": fault_at, "kind": kind,
                          "action": "activate", "detail": ""})
        fault_log.append({"time_ms": fault_at + 1_000.0, "kind": kind,
                          "action": "deactivate", "detail": ""})
    alerts = [Alert(rule=alert_rule, severity="page", condition="",
                    started_ms=alert_at, ended_ms=alert_at + 300.0)]
    return build_report(
        alerts, Evidence(fault_log=fault_log),
        scenario="stub", first_fault_at_ms=fault_at, end_ms=5_000.0,
    )


def _gate_lines(verifier):
    report = verifier.verify()
    return report, [c for c in report.checks if "detection" in c]


def test_gate_silent_when_no_incident_report_given():
    report, lines = _gate_lines(ChaosVerifier(engine=_EngineStub("ack_loss")))
    assert lines == []
    assert report.incidents_detected is None


def test_no_fault_control_passes_on_zero_incidents():
    empty = build_report([], Evidence(), scenario="control", end_ms=5_000.0)
    report, lines = _gate_lines(
        ChaosVerifier(engine=_EngineStub(), incidents=empty))
    assert report.passed
    assert lines == ["PASS detection: no faults, no incidents"]
    assert report.incidents_detected == 0


def test_no_fault_control_fails_on_any_incident():
    noisy = build_report(
        [Alert(rule="latency-anomaly", severity="page", condition="",
               started_ms=100.0, ended_ms=200.0)],
        Evidence(), scenario="control", end_ms=5_000.0,
    )
    report, lines = _gate_lines(
        ChaosVerifier(engine=_EngineStub(), incidents=noisy))
    assert not report.passed
    assert "false positive" in lines[0]


def test_fault_run_fails_when_nothing_detected():
    empty = build_report([], Evidence(), scenario="s", end_ms=5_000.0)
    report, lines = _gate_lines(
        ChaosVerifier(engine=_EngineStub("tcp_sever"), incidents=empty))
    assert not report.passed
    assert "no incident was detected" in lines[0]


def test_fault_run_passes_when_top_suspect_matches_in_window():
    report, lines = _gate_lines(ChaosVerifier(
        engine=_EngineStub("ack_loss"), incidents=_report()))
    assert report.passed
    assert "blamed fault:ack_loss" in lines[0]
    assert report.top_suspect == "fault:ack_loss"
    assert report.detection_ms == pytest.approx(200.0)


def test_fault_run_fails_on_misattribution():
    # Incident exists but blames a fault kind that was not injected.
    report, lines = _gate_lines(ChaosVerifier(
        engine=_EngineStub("shard_outage"), incidents=_report()))
    assert not report.passed
    assert "no incident blamed an injected fault" in lines[0]
    assert report.top_suspect == "fault:ack_loss"


def test_fault_run_fails_on_late_detection():
    slo = RecoverySLO(detection_window_ms=100.0)
    late = _report(alert_at=1_500.0)  # MTTD 500 ms > 100 ms window
    report, lines = _gate_lines(ChaosVerifier(
        engine=_EngineStub("ack_loss"), incidents=late, slo=slo))
    assert not report.passed
    assert "within 100 ms" in lines[0]


def test_multi_fault_scenario_accepts_any_injected_kind():
    report, lines = _gate_lines(ChaosVerifier(
        engine=_EngineStub("ack_loss", "tcp_delay"), incidents=_report()))
    assert report.passed
