"""Exporter round-trips for alert-rule names with hostile characters.

Rule names land in ``alerts_firing{rule="..."}`` series keys and then
in every exporter; the corpus below mirrors the separator/quoting
cases of tests/telemetry/test_series_keys.py so a rule named after an
expression (``errors=high,window=1s``) survives Prometheus text
escaping and the JSONL round-trip unmangled.
"""

import pytest

from repro.incidents import AlertEngine, Signal, ThresholdRule
from repro.telemetry import (
    MetricsRegistry,
    TimeSeries,
    parse_prometheus_text,
    read_jsonl,
    write_jsonl,
    write_prometheus,
)
from repro.telemetry.registry import parse_series_key

pytestmark = pytest.mark.incident

#: Rule names exercising every escaping hazard: label separators,
#: key/value separators, quotes, backslashes.
HOSTILE_NAMES = [
    "errors=high,window=1s",
    'quoted "page" rule',
    "back\\slash",
    "comma,separated",
]


def _fire(name):
    """An engine whose one rule (named ``name``) opens immediately."""
    registry = MetricsRegistry()
    engine = AlertEngine(
        [ThresholdRule(name=name, signal=Signal("depth", mode="gauge"),
                       threshold=0.5, op=">")],
        registry=registry,
    )
    ts = TimeSeries()
    ts.append(0.0, {"depth": 2.0})
    engine.observe(ts)
    return registry


@pytest.mark.parametrize("name", HOSTILE_NAMES)
def test_alert_rule_name_survives_prometheus_roundtrip(tmp_path, name):
    registry = _fire(name)
    path = tmp_path / "alerts.prom"
    write_prometheus(registry, str(path))
    samples = parse_prometheus_text(path.read_text())
    firing = {
        key: value for key, value in samples.items()
        if parse_series_key(key)[0] == "alerts_firing"
    }
    assert len(firing) == 1
    key, value = next(iter(firing.items()))
    assert value == 1.0
    assert parse_series_key(key)[1] == {"rule": name}


@pytest.mark.parametrize("name", HOSTILE_NAMES)
def test_alert_series_survive_jsonl_roundtrip(tmp_path, name):
    registry = _fire(name)
    ts = TimeSeries()
    ts.append(0.0, registry.collect())
    path = str(tmp_path / "telemetry.jsonl")
    write_jsonl(ts, path)
    loaded = read_jsonl(path)
    firing = loaded.series_matching("alerts_firing")
    assert len(firing) == 1
    key = next(iter(firing))
    assert parse_series_key(key)[1] == {"rule": name}
    assert firing[key] == [(0.0, 1.0)]


def test_fired_counter_carries_rule_and_severity_labels():
    registry = _fire("errors=high,window=1s")
    collected = registry.collect()
    fired = [
        key for key in collected
        if parse_series_key(key)[0] == "alerts_fired_total"
    ]
    assert len(fired) == 1
    labels = parse_series_key(fired[0])[1]
    assert labels == {"rule": "errors=high,window=1s", "severity": "page"}
