"""Shared fixtures for the incidents suite.

``reset_sim_counters`` mirrors tests/chaos/conftest.py: the global
itertools id counters make two same-process runs non-comparable, so
any test that compares event hashes across runs must reset them.

``_hermetic_rulesets`` (autouse) snapshots the module-level ruleset
registry so a test that registers a custom ruleset cannot leak it into
the rest of the session.
"""

import itertools

import pytest

from repro.incidents import rules as rules_mod


@pytest.fixture(autouse=True)
def _hermetic_rulesets():
    snapshot = dict(rules_mod.RULESETS)
    yield
    rules_mod.RULESETS.clear()
    rules_mod.RULESETS.update(snapshot)


@pytest.fixture
def reset_sim_counters(monkeypatch):
    """Reset global id counters so two runs in one process are comparable."""
    from repro.core import client as client_mod
    from repro.core import messages
    from repro.faas import platform as platform_mod
    from repro.rpc import connections

    def reset():
        monkeypatch.setattr(
            client_mod.LambdaFSClient, "_ids", itertools.count(1))
        monkeypatch.setattr(connections.TcpConnection, "_ids", itertools.count(1))
        monkeypatch.setattr(connections.TcpServer, "_ids", itertools.count(1))
        monkeypatch.setattr(connections.ClientVM, "_ids", itertools.count(1))
        monkeypatch.setattr(
            platform_mod.FunctionInstance, "_ids", itertools.count(1))
        monkeypatch.setattr(messages, "_request_ids", itertools.count(1))

    reset()
    return reset
