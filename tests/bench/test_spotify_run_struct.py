"""Unit tests for the SpotifyRun result structure (pure logic)."""

from repro.bench.experiments import SpotifyRun


def make_run():
    return SpotifyRun(
        name="test",
        throughput_timeline=[(0.0, 100.0), (1000.0, 200.0), (2000.0, 300.0)],
        nn_timeline=[(0.0, 4), (1000.0, 8)],
        cost_timeline=[(0.0, 0.0), (1000.0, 0.01), (2000.0, 0.03)],
        avg_throughput=200.0,
        peak_throughput=300.0,
        avg_latency_ms=1.5,
        final_cost_usd=0.03,
        simplified_cost_usd=0.06,
        latencies_by_op={"read file": [1.0, 2.0, 3.0]},
    )


def test_perf_per_cost_uses_incremental_cost():
    run = make_run()
    series = run.perf_per_cost_timeline()
    # t=0: delta ~0 -> huge; t=1000: 200 ops / $0.01; t=2000: 300 / $0.02.
    import pytest

    by_t = dict(series)
    assert by_t[1000.0] == pytest.approx(200.0 / 0.01)
    assert by_t[2000.0] == pytest.approx(300.0 / 0.02)


def test_read_latency_cdf():
    run = make_run()
    cdf = run.read_latency_cdf()
    assert cdf[0][0] == 1.0
    assert cdf[-1] == (3.0, 1.0)
    assert run.read_latency_cdf("missing op") == []


def test_perf_per_cost_skips_unsampled_bins():
    run = make_run()
    run.throughput_timeline.append((5000.0, 50.0))  # no cost sample at 5 s
    series = dict(run.perf_per_cost_timeline())
    assert 5000.0 not in series
