"""Smoke tests for the benchmark harness at tiny scale.

These keep the experiment drivers correct without paying benchmark
runtimes: every builder constructs, every driver returns sane rows.
"""

import pytest

from repro.bench.harness import (
    build_cephfs,
    build_hopsfs,
    build_hopsfs_cache,
    build_infinicache,
    build_lambdafs,
    run_micro,
)
from repro.core import OpType
from repro.namespace.treegen import TreeSpec, generate_tree
from repro.sim import Environment

TREE = generate_tree(TreeSpec(depth=2, dirs_per_dir=2, files_per_dir=4))

BUILDERS = [
    build_lambdafs,
    build_hopsfs,
    build_hopsfs_cache,
    build_infinicache,
    build_cephfs,
]


@pytest.mark.parametrize("builder", BUILDERS)
def test_builder_runs_reads(builder):
    env = Environment()
    handle = builder(env, TREE, vcpus=64.0)
    result = run_micro(handle, TREE, OpType.READ_FILE, clients=4,
                       ops_per_client=8, warmup_per_client=2)
    assert result.total_ops == 32
    assert result.errors == 0
    assert result.throughput > 0
    assert handle.active_servers() >= 1
    assert handle.cost_usd(result.duration_ms) > 0


def test_lambda_builder_vcpu_budget_respected():
    env = Environment()
    handle = build_lambdafs(env, TREE, vcpus=32.0)
    run_micro(handle, TREE, OpType.READ_FILE, clients=8,
              ops_per_client=8, warmup_per_client=0)
    # 32 vCPUs / 6.25 per instance = at most 5 instances.
    assert handle.system.platform.used_vcpus() <= 32.0


def test_hopsfs_builder_sizes_cluster():
    env = Environment()
    handle = build_hopsfs(env, TREE, vcpus=64.0)
    assert handle.active_servers() == 4  # 64 / 16 vCPU per NameNode


def test_table3_driver_tiny():
    from repro.bench.experiments import table3_subtree_mv

    rows = table3_subtree_mv(directory_sizes=(64,))
    assert rows[0]["files"] == 64
    assert rows[0]["lambda"] > 0
    assert rows[0]["hopsfs"] > 0


def test_fig14_driver_tiny():
    from repro.bench.experiments import fig14_autoscaling_ablation

    rows = fig14_autoscaling_ablation(
        ops=(OpType.READ_FILE,), clients=16, ops_per_client=16,
        warmup_per_client=4,
    )
    assert set(rows[0]) == {"op", "AS", "Limited AS", "No AS"}
    assert all(rows[0][mode] > 0 for mode in ("AS", "Limited AS", "No AS"))


def test_fig16_driver_tiny():
    from repro.bench.experiments import fig16_indexfs

    rows = fig16_indexfs(client_counts=(2,), writes_per_client=10,
                         reads_per_client=10, fixed_total=40)
    assert len(rows) == 2  # variable + fixed
    assert all(r["lambda_write"] > 0 and r["indexfs_write"] > 0 for r in rows)


def test_replacement_sweep_driver_tiny():
    from repro.bench.experiments import replacement_probability_sweep

    rows = replacement_probability_sweep(
        probabilities=(0.0, 0.5), clients=8, ops_per_client=16,
    )
    assert [r["probability"] for r in rows] == [0.0, 0.5]
    assert all(r["throughput"] > 0 for r in rows)


def test_concurrency_sweep_driver_tiny():
    from repro.bench.experiments import concurrency_level_sweep

    rows = concurrency_level_sweep(levels=(1, 8), clients=24,
                                   ops_per_client=16, warmup_per_client=4)
    assert [r["concurrency_level"] for r in rows] == [1, 8]
    # A lower concurrency level provisions at least as many instances.
    assert rows[0]["namenodes"] >= rows[1]["namenodes"]
