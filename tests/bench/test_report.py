"""Unit tests for the table renderer."""

from repro.bench.report import format_cell, tabulate


def test_format_cell_floats():
    assert format_cell(1234.5) == "1,234"
    assert format_cell(12.345) == "12.35"
    assert format_cell("text") == "text"
    assert format_cell(7) == "7"


def test_tabulate_alignment():
    table = tabulate(["name", "value"], [["a", 1.0], ["long-name", 22.5]])
    lines = table.split("\n")
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert len(lines) == 4
    # Columns are aligned: every row has the separator at the same spot.
    first_col_width = lines[1].split("  ")[0]
    assert len(first_col_width) == len("long-name")


def test_tabulate_empty_rows():
    table = tabulate(["a", "b"], [])
    assert "a" in table and "b" in table
    assert len(table.split("\n")) == 2


def test_format_cell_none_is_dash():
    assert format_cell(None) == "-"


def test_format_cell_negative_large_floats():
    assert format_cell(-1234.5) == "-1,234"
    assert format_cell(-12.345) == "-12.35"


def test_format_cell_non_finite():
    assert format_cell(float("inf")) == "inf"
    assert format_cell(float("-inf")) == "-inf"
    assert format_cell(float("nan")) == "nan"


def test_tabulate_none_cells_render_as_dash():
    table = tabulate(["a", "b"], [[None, 1.0]])
    assert table.split("\n")[2].startswith("-")


def test_tabulate_ragged_rows():
    # Short rows pad with blanks; long rows drop the extras.
    table = tabulate(["a", "b"], [["x"], ["y", 2.0, "extra"]])
    lines = table.split("\n")
    assert len(lines) == 4
    assert "extra" not in table
    assert lines[2].split("  ")[0].strip() == "x"
