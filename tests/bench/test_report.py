"""Unit tests for the table renderer."""

from repro.bench.report import format_cell, tabulate


def test_format_cell_floats():
    assert format_cell(1234.5) == "1,234"
    assert format_cell(12.345) == "12.35"
    assert format_cell("text") == "text"
    assert format_cell(7) == "7"


def test_tabulate_alignment():
    table = tabulate(["name", "value"], [["a", 1.0], ["long-name", 22.5]])
    lines = table.split("\n")
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert len(lines) == 4
    # Columns are aligned: every row has the separator at the same spot.
    first_col_width = lines[1].split("  ")[0]
    assert len(first_col_width) == len("long-name")


def test_tabulate_empty_rows():
    table = tabulate(["a", "b"], [])
    assert "a" in table and "b" in table
    assert len(table.split("\n")) == 2
