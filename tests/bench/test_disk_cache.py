"""Tests for the benchmark disk cache and its env-var override."""

import pickle

from repro.bench.cache import ENV_VAR, cache_dir, disk_cached


def test_cache_dir_env_var_wins(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_VAR, str(tmp_path / "scratch"))
    assert cache_dir(tmp_path / "default") == tmp_path / "scratch"


def test_cache_dir_default_and_cwd_fallback(tmp_path, monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert cache_dir(tmp_path / "default") == tmp_path / "default"
    monkeypatch.chdir(tmp_path)
    assert cache_dir() == tmp_path / "benchmarks" / "results"


def test_disk_cached_computes_once(tmp_path, monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    calls = []

    def compute():
        calls.append(1)
        return {"answer": 42}

    first = disk_cached("unit", compute, tmp_path)
    second = disk_cached("unit", compute, tmp_path)
    assert first == second == {"answer": 42}
    assert len(calls) == 1
    assert (tmp_path / ".cache_unit.pkl").exists()


def test_disk_cached_respects_env_override(tmp_path, monkeypatch):
    scratch = tmp_path / "elsewhere"
    monkeypatch.setenv(ENV_VAR, str(scratch))
    disk_cached("unit", lambda: 1, tmp_path / "ignored")
    assert (scratch / ".cache_unit.pkl").exists()
    assert not (tmp_path / "ignored").exists()


def test_disk_cached_recovers_from_corrupt_file(tmp_path, monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    path = tmp_path / ".cache_unit.pkl"
    path.write_bytes(b"not a pickle")
    value = disk_cached("unit", lambda: "fresh", tmp_path)
    assert value == "fresh"
    assert pickle.loads(path.read_bytes()) == "fresh"
