"""Unit tests for the kernel throughput benchmark.

Covers the closed-form event count (cross-checked against an actual
run via the counting ``on_step`` hook), the regression-gating
semantics ``scripts/smoke.sh`` relies on, result-file round-tripping,
and the CLI's scale selection.
"""

import json

import pytest

from repro.bench.kernel import (
    QUICK_SCALES,
    SCALES,
    KernelScale,
    compare_kernel_bench,
    format_kernel_bench,
    format_kernel_diff,
    load_kernel_bench,
    quick_scale_names,
    run_kernel_bench,
    run_kernel_point,
    save_kernel_bench,
)

pytestmark = pytest.mark.kernel


def test_closed_form_matches_executed_events():
    scale = KernelScale("tiny", clients=40, ops_per_client=13)
    record = run_kernel_point(scale, verify_count=True, mem_probe=False)
    assert record["events"] == scale.events_expected()
    assert record["ops"] == 40 * 13
    assert record["events_per_sec"] > 0


def test_verify_count_catches_a_wrong_closed_form():
    class _Lying(KernelScale):
        def events_expected(self):
            return super().events_expected() + 1

    with pytest.raises(AssertionError, match="closed form"):
        run_kernel_point(_Lying("lie", clients=10, ops_per_client=4),
                         verify_count=True, mem_probe=False)


def _result(**points):
    return {
        "version": 1,
        "seed": 0,
        "points": {
            name: {
                "clients": 1, "ops_per_client": 1, "events": 100, "ops": 10,
                "final_sim_ms": 1.0, "wall_s": 1.0,
                "events_per_sec": eps, "ops_per_sec": eps,
                "rss_max_kb": None,
            }
            for name, eps in points.items()
        },
    }


def test_compare_passes_within_threshold():
    diff = compare_kernel_bench(_result(a=100.0), _result(a=91.0),
                                threshold=0.10)
    assert diff.ok and diff.regressions == []
    assert "PASS" in format_kernel_diff(diff)
    # Improvements obviously pass too.
    assert compare_kernel_bench(_result(a=100.0), _result(a=300.0)).ok


def test_compare_flags_regression_beyond_threshold():
    diff = compare_kernel_bench(_result(a=100.0), _result(a=85.0),
                                threshold=0.10)
    assert not diff.ok
    assert len(diff.regressions) == 1 and "a" in diff.regressions[0]
    assert "FAIL" in format_kernel_diff(diff)
    # A looser threshold accepts the same candidate.
    assert compare_kernel_bench(_result(a=100.0), _result(a=85.0),
                                threshold=0.20).ok


def test_compare_skips_unshared_scale_points():
    diff = compare_kernel_bench(_result(a=100.0), _result(b=1.0))
    assert diff.ok and diff.rows == []


def test_bench_json_round_trip(tmp_path):
    result = _result(q=123.456)
    path = save_kernel_bench(result, str(tmp_path / "bench.json"))
    assert load_kernel_bench(path) == result
    assert "events/s" in format_kernel_bench(result)


def test_load_rejects_non_bench_file(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"foo": 1}))
    with pytest.raises(ValueError, match="points"):
        load_kernel_bench(str(path))


def test_quick_scale_names():
    assert quick_scale_names(False, None) == list(SCALES)
    assert quick_scale_names(True, None) == list(QUICK_SCALES)
    # Explicit scales win over the quick flag.
    assert quick_scale_names(True, ["1k", "100k"]) == ["1k", "100k"]


def test_run_kernel_bench_rejects_bad_arguments():
    with pytest.raises(ValueError, match="unknown kernel scale"):
        run_kernel_bench(scales=("nope",))
    with pytest.raises(ValueError, match="repeats"):
        run_kernel_bench(scales=("1k",), repeats=0)
