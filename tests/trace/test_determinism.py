"""Determinism regression: same seed, same bits.

The tracer folds every kernel step into a streaming hash, so two
runs are step-for-step identical iff their hashes match.  A handful
of module-level id counters (client/connection/request numbering)
feed RNG stream names and must be reset between in-process runs —
exactly what a fresh interpreter would see.
"""

import itertools

import pytest

from repro.bench.experiments import fig8_spotify
from repro.core import client as client_mod
from repro.core import messages
from repro.faas import platform as platform_mod
from repro.rpc import connections


def _reset_global_counters(monkeypatch):
    """Give every process-global id counter a fresh start, as a new
    interpreter would."""
    monkeypatch.setattr(client_mod.LambdaFSClient, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.TcpConnection, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.TcpServer, "_ids", itertools.count(1))
    monkeypatch.setattr(connections.ClientVM, "_ids", itertools.count(1))
    monkeypatch.setattr(platform_mod.FunctionInstance, "_ids", itertools.count(1))
    monkeypatch.setattr(messages, "_request_ids", itertools.count(1))


def _run(monkeypatch, seed):
    _reset_global_counters(monkeypatch)
    run = fig8_spotify(
        base_throughput=800.0,
        duration_ms=4_000.0,
        clients=16,
        vcpus=64.0,
        seed=seed,
        systems=("lambda",),
        trace=True,
    )["lambda"]
    assert run.trace_report is not None
    return run


@pytest.mark.slow
def test_same_seed_is_bit_identical(monkeypatch):
    first = _run(monkeypatch, seed=8)
    second = _run(monkeypatch, seed=8)

    assert first.trace_report["event_hash"] == second.trace_report["event_hash"]
    assert first.trace_report["events_hashed"] == \
        second.trace_report["events_hashed"]
    assert first.trace_report["spans"] == second.trace_report["spans"]
    # The recorded metrics agree too, not just the event stream.
    assert first.avg_throughput == second.avg_throughput
    assert first.avg_latency_ms == second.avg_latency_ms
    assert first.latencies_by_op == second.latencies_by_op
    assert first.throughput_timeline == second.throughput_timeline
    assert (first.issued, first.completed) == (second.issued, second.completed)
    # And the run was coherent while it was at it.
    assert first.trace_report["violations"] == 0


@pytest.mark.slow
def test_different_seed_diverges(monkeypatch):
    first = _run(monkeypatch, seed=8)
    other = _run(monkeypatch, seed=9)
    assert first.trace_report["event_hash"] != other.trace_report["event_hash"]
