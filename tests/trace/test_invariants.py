"""Invariant checker tests: unit-fed span streams plus end-to-end
runs (a clean one that must be violation-free, and a deliberately
broken coherence path the checker must catch)."""

import pytest

from repro.core import LambdaFS, LambdaFSConfig
from repro.core.namenode import LambdaNameNode
from repro.faas import FaaSConfig
from repro.sim import Environment
from repro.trace import (
    CoherenceChecker,
    InvariantViolation,
    LockDisciplineChecker,
    Tracer,
    install_tracer,
)


def make(checker):
    env = Environment()
    tracer = Tracer(env)
    tracer.add_checker(checker)
    return tracer


# -- CoherenceChecker, unit-fed ------------------------------------------

def test_commit_before_ack_flagged():
    checker = CoherenceChecker()
    tracer = make(checker)
    inv = tracer.begin(
        "coord.inv", "nn1", inv_id=1, initiator="nn1", paths=("/a",), prefix=None
    )
    tracer.point("nn.commit", "nn1", paths=("/a",))
    tracer.end(inv)
    assert [v.rule for v in checker.violations] == ["commit-before-ack"]
    assert checker.commits_checked == 1


def test_commit_after_ack_is_clean():
    checker = CoherenceChecker()
    tracer = make(checker)
    inv = tracer.begin(
        "coord.inv", "nn1", inv_id=1, initiator="nn1", paths=("/a",), prefix=None
    )
    tracer.end(inv)
    tracer.point("nn.commit", "nn1", paths=("/a",))
    assert checker.violations == []


def test_commit_by_other_initiator_not_flagged():
    # nn2's open round must not block nn1's unrelated commit.
    checker = CoherenceChecker()
    tracer = make(checker)
    tracer.begin(
        "coord.inv", "nn2", inv_id=7, initiator="nn2", paths=("/a",), prefix=None
    )
    tracer.point("nn.commit", "nn1", paths=("/a",))
    assert checker.violations == []


def test_concurrent_write_not_blamed_for_siblings_round():
    # One NameNode serves writes concurrently: txn B committing must
    # not be flagged against txn A's still-open round on the same
    # path.  Rounds and commits are matched by originating request
    # (shared causal parent), not just by actor.
    checker = CoherenceChecker()
    tracer = make(checker)
    req_a = tracer.begin("nn.handle", "nn1", op="create file")
    req_b = tracer.begin("nn.handle", "nn1", op="create file")
    tracer.begin(
        "coord.inv", "nn1", parent=req_a,
        inv_id=1, initiator="nn1", paths=("/dir",), prefix=None,
    )
    inv_b = tracer.begin(
        "coord.inv", "nn1", parent=req_b,
        inv_id=2, initiator="nn1", paths=("/dir",), prefix=None,
    )
    tracer.end(inv_b)
    tracer.point("nn.commit", "nn1", parent=req_b, paths=("/dir",))
    assert checker.violations == []
    # But committing request A while its own round is open is flagged.
    tracer.point("nn.commit", "nn1", parent=req_a, paths=("/dir",))
    assert [v.rule for v in checker.violations] == ["commit-before-ack"]


def test_commit_under_open_prefix_round_flagged():
    checker = CoherenceChecker()
    tracer = make(checker)
    tracer.begin(
        "coord.inv", "nn1", inv_id=2, initiator="nn1", paths=(), prefix="/dir"
    )
    tracer.point("nn.commit", "nn1", paths=("/dir/child",))
    assert [v.rule for v in checker.violations] == ["commit-before-ack"]


def test_stale_cache_hit_flagged():
    checker = CoherenceChecker()
    tracer = make(checker)
    tracer.point("nn.cache_put", "nn2", path="/a")
    tracer.point("nn.cache_hit", "nn2", path="/a")        # still valid
    tracer.point("coord.inv_deliver", "nn2", paths=("/a",))
    tracer.point("nn.cache_hit", "nn2", path="/a")        # now stale
    assert [v.rule for v in checker.violations] == ["stale-cache-hit"]
    assert checker.hits_checked == 2


def test_stale_hit_under_prefix_invalidation():
    checker = CoherenceChecker()
    tracer = make(checker)
    tracer.point("nn.cache_put", "nn2", path="/d/x")
    tracer.point("coord.inv_deliver", "nn2", paths=(), prefix="/d")
    tracer.point("nn.cache_hit", "nn2", path="/d/x")
    assert [v.rule for v in checker.violations] == ["stale-cache-hit"]


def test_reput_after_invalidation_revalidates():
    checker = CoherenceChecker()
    tracer = make(checker)
    tracer.point("coord.inv_deliver", "nn2", paths=("/a",))
    tracer.point("nn.cache_put", "nn2", path="/a")        # fresh fetch
    tracer.point("nn.cache_hit", "nn2", path="/a")
    assert checker.violations == []


def test_fail_fast_raises():
    checker = CoherenceChecker(fail_fast=True)
    tracer = make(checker)
    tracer.point("coord.inv_deliver", "nn2", paths=("/a",))
    with pytest.raises(InvariantViolation):
        tracer.point("nn.cache_hit", "nn2", path="/a")


# -- LockDisciplineChecker, unit-fed -------------------------------------

def test_shared_holders_coexist_exclusive_conflicts():
    checker = LockDisciplineChecker()
    tracer = make(checker)
    tracer.point("lock.acquire", "t1", key="k", mode="shared")
    tracer.point("lock.acquire", "t2", key="k", mode="shared")
    assert checker.violations == []
    tracer.point("lock.acquire", "t3", key="k", mode="exclusive")
    assert [v.rule for v in checker.violations] == [
        "mutual-exclusion", "mutual-exclusion"  # conflicts with t1 and t2
    ]


def test_release_without_acquire_flagged():
    checker = LockDisciplineChecker()
    tracer = make(checker)
    tracer.point("lock.release", "t1", key="k")
    assert [v.rule for v in checker.violations] == ["release-without-acquire"]


def test_acquire_release_reacquire_is_clean():
    checker = LockDisciplineChecker()
    tracer = make(checker)
    tracer.point("lock.acquire", "t1", key="k", mode="exclusive")
    tracer.point("lock.release", "t1", key="k")
    tracer.point("lock.acquire", "t2", key="k", mode="exclusive")
    tracer.point("lock.release", "t2", key="k")
    tracer.point("txn.end", "t1", committed=True)
    tracer.point("txn.end", "t2", committed=True)
    assert checker.violations == []
    assert checker.acquires == 2 and checker.releases == 2


def test_out_of_order_wait_flagged():
    checker = LockDisciplineChecker()
    tracer = make(checker)
    tracer.point("lock.acquire", "t1", key="k2", mode="exclusive")
    tracer.point("lock.wait", "t1", key="k1", mode="exclusive")
    assert [v.rule for v in checker.violations] == ["out-of-order-wait"]


def test_in_order_wait_is_clean():
    checker = LockDisciplineChecker()
    tracer = make(checker)
    tracer.point("lock.acquire", "t1", key="k1", mode="exclusive")
    tracer.point("lock.wait", "t1", key="k2", mode="exclusive")
    assert checker.violations == []


def test_cross_batch_wait_order_is_legitimate():
    # The canonical-order promise holds per lock_many batch; a txn
    # that locked k2 in batch 1 may block on k1 in batch 2 (that
    # deadlock risk is handled by timeout+retry, not ordering).
    checker = LockDisciplineChecker()
    tracer = make(checker)
    tracer.point("lock.acquire", "t1", key="k2", mode="exclusive", epoch=1)
    tracer.point("lock.wait", "t1", key="k1", mode="exclusive", epoch=2)
    assert checker.violations == []
    tracer.point("lock.acquire", "t1", key="k3", mode="exclusive", epoch=3)
    tracer.point("lock.wait", "t1", key="k0", mode="exclusive", epoch=3)
    assert [v.rule for v in checker.violations] == ["out-of-order-wait"]


def test_locks_held_past_txn_end_flagged():
    checker = LockDisciplineChecker()
    tracer = make(checker)
    tracer.point("lock.acquire", "t1", key="k", mode="exclusive")
    tracer.point("txn.end", "t1", committed=True)
    assert [v.rule for v in checker.violations] == ["locks-held-past-txn-end"]
    # State was reclaimed: another owner can take the key cleanly.
    tracer.point("lock.acquire", "t2", key="k", mode="exclusive")
    assert len(checker.violations) == 1


# -- end-to-end ----------------------------------------------------------

DIRS = ["/d0", "/d1"]


def build_fs(env):
    config = LambdaFSConfig(
        num_deployments=2,
        faas=FaaSConfig(
            cluster_vcpus=32.0, vcpus_per_instance=4.0,
            cold_start_min_ms=10.0, cold_start_max_ms=15.0, app_init_ms=2.0,
        ),
    )
    fs = LambdaFS(env, config)
    fs.format()
    fs.start()
    fs.install_namespace(DIRS, ["/d0/seed", "/d1/seed"])
    return fs


def test_clean_run_has_zero_violations():
    env = Environment()
    tracer = install_tracer(env)
    fs = build_fs(env)
    alice = fs.new_client(fs.new_vm())
    bob = fs.new_client(fs.new_vm())

    def scenario(env):
        yield from bob.stat("/d0/seed")          # warm bob's cache
        yield from alice.create_file("/d0/new")
        yield from alice.mkdirs("/d1/sub")
        yield from alice.mv("/d0/new", "/d1/new")
        yield from bob.stat("/d0/seed")
        yield from bob.ls("/d1")
        yield from alice.set_permission("/d1/seed", 0o640)
        yield from alice.delete("/d1/new")
        yield from bob.stat("/d1/seed")

    done = env.process(scenario(env))
    env.run(until=done)
    assert tracer.violations() == []
    checkers = {type(c).__name__: c for c in tracer.checkers}
    assert checkers["CoherenceChecker"].commits_checked > 0
    assert checkers["LockDisciplineChecker"].acquires > 0


def test_broken_coherence_is_caught(monkeypatch):
    """Skip the ACK wait before commit — the checker must notice.

    The patched ``run_coherence`` fires the INV rounds but returns
    without awaiting the ACKs, so the write transaction commits while
    rounds it initiated are still open: exactly the ordering bug
    Algorithm 1 exists to prevent.
    """

    def fire_and_forget(self, affected_paths, broadcast=False, trace_parent=None):
        by_deployment = {}
        if broadcast:
            for deployment in self.fs.partitioner.deployment_names():
                by_deployment[deployment] = list(set(affected_paths))
        else:
            for path in set(affected_paths):
                deployment = self.fs.partitioner.deployment_for(path)
                by_deployment.setdefault(deployment, []).append(path)
        env = self.fs.env
        for deployment, paths in by_deployment.items():
            exclude = [self.member_id] if deployment == self.deployment_name else []
            env.process(self.fs.coordinator.invalidate(
                deployment, paths=paths, exclude=exclude,
                initiator=self.member_id, trace_parent=trace_parent,
            ))
        yield env.timeout(0.0)   # does NOT wait for the ACKs

    monkeypatch.setattr(LambdaNameNode, "run_coherence", fire_and_forget)

    env = Environment()
    tracer = install_tracer(env)
    fs = build_fs(env)
    alice = fs.new_client(fs.new_vm())
    bob = fs.new_client(fs.new_vm())

    def scenario(env):
        # Warm a second NameNode so the INV round has a remote member
        # to wait on (ACK latency > 0).
        yield from bob.stat("/d0/seed")
        yield from alice.create_file("/d0/new")
        yield from alice.delete("/d0/seed")

    done = env.process(scenario(env))
    env.run(until=done)
    rules = {v.rule for v in tracer.violations()}
    assert "commit-before-ack" in rules
