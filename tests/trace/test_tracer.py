"""Unit tests for the causal tracer itself."""

import pytest

from repro.sim import Environment
from repro.trace import Span, Tracer, parent_id_of


def test_install_and_detach():
    env = Environment()
    tracer = Tracer(env)
    assert env.tracer is tracer
    tracer.detach()
    assert env.tracer is None
    # Detaching someone else's tracer is a no-op.
    other = Tracer(env)
    tracer.detach()
    assert env.tracer is other


def test_span_parenting_and_tree():
    env = Environment()
    tracer = Tracer(env)
    root = tracer.begin("client.op", "client1", op="stat")
    rpc = tracer.begin("rpc.tcp", "client1", parent=root, attempt=1)
    handle = tracer.begin("nn.handle", "nn1", parent=rpc.span_id)
    tracer.end(handle)
    tracer.end(rpc)
    tracer.end(root, ok=True)

    assert root.parent_id is None
    assert rpc.parent_id == root.span_id
    assert handle.parent_id == rpc.span_id
    assert root.attrs["ok"] is True

    assert [s.span_id for s in tracer.roots()] == [root.span_id]
    assert [s.span_id for s in tracer.children(root)] == [rpc.span_id]
    tree = tracer.tree(root)
    assert [(depth, s.kind) for depth, s in tree] == [
        (0, "client.op"), (1, "rpc.tcp"), (2, "nn.handle")
    ]
    rendering = tracer.render_tree(root)
    assert "client.op" in rendering and "  rpc.tcp" in rendering


def test_parent_id_of_accepts_span_id_none():
    env = Environment()
    tracer = Tracer(env)
    span = tracer.begin("x", "a")
    assert parent_id_of(span) == span.span_id
    assert parent_id_of(span.span_id) == span.span_id
    assert parent_id_of(None) is None


def test_point_is_zero_duration():
    env = Environment()
    tracer = Tracer(env)
    point = tracer.point("nn.cache_hit", "nn1", path="/x")
    assert point.duration_ms == 0.0
    assert not point.open
    assert tracer.points == 1


def test_end_none_is_noop():
    env = Environment()
    tracer = Tracer(env)
    tracer.end(None)  # must not raise (the disabled-site contract)


def test_durations_and_timing_by_kind():
    env = Environment()
    tracer = Tracer(env)
    span = tracer.begin("txn", "t1")

    def advance(env):
        yield env.timeout(5.0)

    done = env.process(advance(env))
    env.run(until=done)
    tracer.end(span)
    tracer.point("txn.end", "t1")
    counts = tracer.timing_by_kind()
    assert counts["txn"] == (1, pytest.approx(5.0))
    assert tracer.durations("txn") == [pytest.approx(5.0)]
    # Open spans are excluded from durations().
    tracer.begin("txn", "t2")
    assert len(tracer.durations("txn")) == 1


def test_max_spans_drops_but_still_counts():
    env = Environment()
    tracer = Tracer(env, max_spans=2)
    for index in range(5):
        tracer.point("x", f"a{index}")
    assert len(tracer.spans) == 2
    assert tracer.dropped == 3
    assert tracer.started == 5


def test_keep_spans_false_streams_to_checkers():
    env = Environment()
    tracer = Tracer(env, keep_spans=False)

    seen = []

    class Probe:
        violations = ()

        def observe(self, phase, span):
            seen.append((phase, span.kind))

    tracer.add_checker(Probe())
    tracer.point("x", "a")
    assert tracer.spans == {}
    assert ("point", "x") in seen


def test_event_hash_tracks_kernel_steps():
    def run(seed_delay):
        env = Environment()
        tracer = Tracer(env)

        def proc(env):
            yield env.timeout(seed_delay)
            yield env.timeout(1.0)

        done = env.process(proc(env))
        env.run(until=done)
        return tracer.event_hash(), tracer.events_hashed

    hash_a, steps_a = run(2.0)
    hash_b, steps_b = run(2.0)
    hash_c, _ = run(3.0)
    assert hash_a == hash_b
    assert steps_a == steps_b > 0
    assert hash_a != hash_c


def test_summary_shape():
    env = Environment()
    tracer = Tracer(env)
    tracer.point("x", "a")
    summary = tracer.summary()
    assert set(summary) == {
        "event_hash", "events_hashed", "spans", "points", "dropped",
        "open_spans", "open_connections", "violations",
    }
    assert summary["spans"] == 1 and summary["violations"] == 0
    assert summary["open_spans"] == 0
    assert summary["open_connections"] == 0


def test_open_spans_surfaces_leaks():
    env = Environment()
    tracer = Tracer(env)
    leaked = tracer.begin("x", "a")
    closed = tracer.begin("y", "a")
    tracer.end(closed)
    assert tracer.open_spans() == [leaked]
    assert tracer.summary()["open_spans"] == 1
    tracer.end(leaked)
    assert tracer.summary()["open_spans"] == 0


def test_retention_cap_drops_are_safe():
    """Spans past the cap are dropped from storage, but ending them,
    parenting children on them, and walking trees must not raise."""
    env = Environment()
    tracer = Tracer(env, max_spans=2)
    kept_a = tracer.begin("a", "x")
    kept_b = tracer.begin("b", "x", parent=kept_a)
    dropped = tracer.begin("c", "x", parent=kept_b)  # over the cap
    assert tracer.dropped == 1
    assert dropped.span_id not in tracer.spans
    # end() on a dropped span is a plain no-surprise close.
    tracer.end(dropped, ok=True)
    assert not dropped.open and dropped.attrs["ok"] is True
    # A child whose parent was dropped still records its parent_id...
    orphan = tracer.begin("d", "x", parent=dropped)
    assert orphan.parent_id == dropped.span_id
    # ...and tree()/children()/render_tree() on missing ids are empty,
    # not KeyErrors.
    assert tracer.children(dropped) == []
    assert tracer.tree(dropped.span_id) == []
    assert tracer.render_tree(dropped.span_id) == ""
    tracer.end(kept_b)
    tracer.end(kept_a)
    # Dropped spans do not count as open leaks (they are not retained).
    assert tracer.summary()["open_spans"] == 0
