"""Unit/integration tests for the HopsFS baselines."""

import pytest

from repro.baselines import HopsFSCachedCluster, HopsFSCluster, HopsFSConfig
from repro.metastore import NdbConfig
from repro.sim import Environment


def small_config(**overrides):
    defaults = dict(
        num_namenodes=4,
        vcpus_per_namenode=4,
        rpc_handlers=16,
        ndb=NdbConfig(rtt_ms=0.1),
    )
    defaults.update(overrides)
    return HopsFSConfig(**defaults)


def drive(env, gen):
    box = {}

    def proc(env):
        box["v"] = yield from gen

    done = env.process(proc(env))
    env.run(until=done)
    return box["v"]


@pytest.fixture()
def cluster():
    env = Environment()
    c = HopsFSCluster(env, small_config())
    c.format()
    return env, c


@pytest.fixture()
def cached_cluster():
    env = Environment()
    c = HopsFSCachedCluster(env, small_config())
    c.format()
    return env, c


def test_basic_lifecycle(cluster):
    env, c = cluster
    client = c.new_client()

    def scenario(env):
        r = yield from client.mkdirs("/d")
        assert r.ok
        r = yield from client.create_file("/d/f")
        assert r.ok
        r = yield from client.stat("/d/f")
        assert r.ok and r.value.name == "f"
        r = yield from client.ls("/d")
        assert r.ok and r.value == ["f"]
        r = yield from client.mv("/d/f", "/d/g")
        assert r.ok
        r = yield from client.delete("/d/g")
        assert r.ok
        return True

    assert drive(env, scenario(env))


def test_stateless_namenodes_never_hit_cache(cluster):
    env, c = cluster
    client = c.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        responses = []
        for _ in range(5):
            responses.append((yield from client.stat("/d/f")))
        return responses

    responses = drive(env, scenario(env))
    assert all(not r.cache_hit for r in responses)


def test_cached_namenodes_hit_after_first_read(cached_cluster):
    env, c = cached_cluster
    client = c.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        first = yield from client.stat("/d/f")
        second = yield from client.stat("/d/f")
        return first, second

    _first, second = drive(env, scenario(env))
    # Consistent-hash routing sends both stats to the same NameNode,
    # so the second is served from its cache.
    assert second.cache_hit


def test_cached_cluster_invalidates_peers(cached_cluster):
    env, c = cached_cluster
    client_a = c.new_client()
    client_b = c.new_client()

    def scenario(env):
        yield from client_a.mkdirs("/d")
        yield from client_a.create_file("/d/f")
        r1 = yield from client_b.stat("/d/f")
        assert r1.ok
        r2 = yield from client_a.mv("/d/f", "/d/g")
        assert r2.ok
        r3 = yield from client_b.stat("/d/f")
        r4 = yield from client_b.stat("/d/g")
        return r3, r4

    r3, r4 = drive(env, scenario(env))
    assert not r3.ok
    assert r4.ok


def test_consistent_hash_routing_is_stable(cached_cluster):
    env, c = cached_cluster
    client = c.new_client()
    nn1 = c.pick_namenode("/dir/a", client._rng)
    nn2 = c.pick_namenode("/dir/b", client._rng)
    assert nn1 is nn2  # same parent directory -> same NameNode


def test_vanilla_routing_spreads(cluster):
    env, c = cluster
    client = c.new_client()
    picks = {c.pick_namenode("/dir/a", client._rng).id for _ in range(50)}
    assert len(picks) > 1


def test_subtree_delete(cluster):
    env, c = cluster
    client = c.new_client()

    def scenario(env):
        yield from client.mkdirs("/top/sub")
        yield from client.create_file("/top/sub/f")
        r = yield from client.delete("/top", recursive=True)
        assert r.ok, r.error
        gone = yield from client.stat("/top/sub/f")
        return gone

    gone = drive(env, scenario(env))
    assert not gone.ok


def test_subtree_mv(cluster):
    env, c = cluster
    client = c.new_client()

    def scenario(env):
        yield from client.mkdirs("/old")
        for i in range(5):
            yield from client.create_file(f"/old/f{i}")
        r = yield from client.mv("/old", "/new")
        assert r.ok, r.error
        moved = yield from client.stat("/new/f3")
        return moved

    moved = drive(env, scenario(env))
    assert moved.ok


def test_cost_scales_with_cluster_and_time(cluster):
    _env, c = cluster
    one_second = c.cost_usd(1_000.0)
    two_seconds = c.cost_usd(2_000.0)
    assert two_seconds == pytest.approx(2 * one_second)
    assert one_second > 0


def test_cached_subtree_prefix_invalidation(cached_cluster):
    env, c = cached_cluster
    client = c.new_client()

    def scenario(env):
        yield from client.mkdirs("/top")
        yield from client.create_file("/top/f")
        r1 = yield from client.stat("/top/f")  # cache it somewhere
        assert r1.ok
        r = yield from client.delete("/top", recursive=True)
        assert r.ok, r.error
        r2 = yield from client.stat("/top/f")
        return r2

    r2 = drive(env, scenario(env))
    assert not r2.ok
