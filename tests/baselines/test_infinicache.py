"""Unit tests for the InfiniCache-style configuration."""

from repro.baselines import make_infinicache
from repro.sim import Environment


def drive(env, gen):
    box = {}

    def proc(env):
        box["v"] = yield from gen

    done = env.process(proc(env))
    env.run(until=done)
    return box["v"]


def test_every_rpc_is_http():
    env = Environment()
    fs = make_infinicache(env)
    fs.format()
    fs.start()
    client = fs.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        for _ in range(10):
            yield from client.stat("/d/f")

    drive(env, scenario(env))
    assert client.stats_tcp_rpcs == 0
    assert client.stats_http_rpcs >= 12


def test_fleet_is_static():
    env = Environment()
    fs = make_infinicache(env, deployments=4)
    fs.format()
    fs.start()
    clients = [fs.new_client(fs.new_vm()) for _ in range(8)]

    def hammer(env, client, index):
        for serial in range(5):
            yield from client.mkdirs(f"/d{index}_{serial}")

    def run_all(env):
        from repro.sim import AllOf

        procs = [env.process(hammer(env, c, i)) for i, c in enumerate(clients)]
        yield AllOf(env, procs)

    drive(env, run_all(env))
    for deployment in fs.platform.deployments.values():
        assert len(deployment.all_instances) <= 1


def test_latency_is_http_class():
    env = Environment()
    fs = make_infinicache(env)
    fs.format()
    fs.start()
    client = fs.new_client()

    def scenario(env):
        yield from client.mkdirs("/d")
        yield from client.create_file("/d/f")
        for _ in range(20):
            yield from client.stat("/d/f")

    drive(env, scenario(env))
    reads = [r.latency_ms for r in fs.metrics.records if r.op == "stat file/dir"]
    # Invoke-per-op: every read pays the 8–20 ms HTTP path.
    assert min(reads) > 7.0
