"""Unit tests for the CephFS-flavoured baseline."""

import pytest

from repro.baselines import CephFSCluster, CephFSConfig
from repro.sim import Environment


def drive(env, gen):
    box = {}

    def proc(env):
        box["v"] = yield from gen

    done = env.process(proc(env))
    env.run(until=done)
    return box["v"]


@pytest.fixture()
def cluster():
    env = Environment()
    return env, CephFSCluster(env, CephFSConfig(num_mds=2))


def test_basic_lifecycle(cluster):
    env, c = cluster
    client = c.new_client()

    def scenario(env):
        r = yield from client.mkdirs("/a/b")
        assert r.ok
        r = yield from client.create_file("/a/b/f")
        assert r.ok
        r = yield from client.stat("/a/b/f")
        assert r.ok and r.value.name == "f"
        r = yield from client.ls("/a/b")
        assert r.ok and r.value == ["f"]
        return True

    assert drive(env, scenario(env))


def test_create_duplicate_fails(cluster):
    env, c = cluster
    client = c.new_client()

    def scenario(env):
        yield from client.create_file("/f")
        return (yield from client.create_file("/f"))

    response = drive(env, scenario(env))
    assert not response.ok and "AlreadyExists" in response.error


def test_delete_recursive(cluster):
    env, c = cluster
    c.install_namespace(["/t", "/t/sub"], ["/t/f", "/t/sub/g"])
    client = c.new_client()

    def scenario(env):
        r = yield from client.delete("/t", recursive=True)
        assert r.ok
        return (yield from client.stat("/t/sub/g"))

    gone = drive(env, scenario(env))
    assert not gone.ok


def test_delete_nonempty_without_recursive_fails(cluster):
    env, c = cluster
    c.install_namespace(["/t"], ["/t/f"])
    client = c.new_client()
    response = drive(env, client.delete("/t"))
    assert not response.ok and "NotDirEmpty" in response.error


def test_mv_renames_subtree(cluster):
    env, c = cluster
    c.install_namespace(["/old/deep"], ["/old/deep/f"])
    client = c.new_client()

    def scenario(env):
        r = yield from client.mv("/old", "/new")
        assert r.ok, r.error
        return (yield from client.stat("/new/deep/f"))

    moved = drive(env, scenario(env))
    assert moved.ok


def test_reads_are_fast_in_memory(cluster):
    env, c = cluster
    c.install_namespace([], ["/f"])
    client = c.new_client()
    drive(env, client.stat("/f"))
    # tcp 2x0.22 + dispatch 0.04 + cpu 0.10 < 1 ms — no store hop.
    assert c.metrics.average_latency() < 1.0


def test_writes_pay_journal(cluster):
    env, c = cluster
    client = c.new_client()
    drive(env, client.create_file("/f"))
    write_latency = c.metrics.average_latency()
    assert write_latency > 0.5  # dispatch + cpu + journal


def test_mds_partitioning_by_parent(cluster):
    _env, c = cluster
    assert c.mds_for("/dir/a") is c.mds_for("/dir/b")


def test_install_namespace_builds_parents(cluster):
    env, c = cluster
    c.install_namespace([], ["/x/y/z/file"])
    client = c.new_client()
    response = drive(env, client.ls("/x/y/z"))
    assert response.ok and response.value == ["file"]


def test_dispatch_serializes_per_mds():
    env = Environment()
    c = CephFSCluster(env, CephFSConfig(num_mds=1, dispatch_ms=1.0))
    c.install_namespace([], ["/d/f"])
    clients = [c.new_client() for _ in range(4)]
    finish = []

    def reader(env, client):
        yield from client.stat("/d/f")
        finish.append(env.now)

    for client in clients:
        env.process(reader(env, client))
    env.run()
    # Single dispatch thread at 1 ms: completions spread ~1 ms apart.
    assert max(finish) - min(finish) >= 2.5
