"""Unit tests for IndexFS and λIndexFS."""

import pytest

from repro.baselines import (
    IndexFSCluster,
    IndexFSConfig,
    LambdaIndexFS,
    LambdaIndexFSConfig,
)
from repro.sim import Environment


def drive(env, gen):
    box = {}

    def proc(env):
        box["v"] = yield from gen

    done = env.process(proc(env))
    env.run(until=done)
    return box["v"]


def test_indexfs_mknod_getattr_roundtrip():
    env = Environment()
    c = IndexFSCluster(env, IndexFSConfig())
    client = c.new_client()

    def scenario(env):
        ok = yield from client.mknod("/tree/d0/f0")
        row = yield from client.getattr("/tree/d0/f0")
        return ok, row

    ok, row = drive(env, scenario(env))
    assert ok and row == {"path": "/tree/d0/f0"}


def test_indexfs_duplicate_mknod_fails():
    env = Environment()
    c = IndexFSCluster(env)
    client = c.new_client()

    def scenario(env):
        yield from client.mknod("/tree/d0/f0")
        return (yield from client.mknod("/tree/d0/f0"))

    assert drive(env, scenario(env)) is False


def test_indexfs_getattr_missing_returns_none():
    env = Environment()
    c = IndexFSCluster(env)
    client = c.new_client()
    assert drive(env, client.getattr("/tree/none/x")) is None


def test_indexfs_directory_partitioning():
    env = Environment()
    c = IndexFSCluster(env)
    assert c.server_for("/tree/d1/a") is c.server_for("/tree/d1/b")


def test_indexfs_install_namespace():
    env = Environment()
    c = IndexFSCluster(env)
    c.install_namespace(["/tree/d0/seeded"])
    client = c.new_client()
    assert drive(env, client.getattr("/tree/d0/seeded")) is not None


@pytest.fixture()
def lambda_system():
    env = Environment()
    system = LambdaIndexFS(env, LambdaIndexFSConfig())
    system.start()
    drive(env, system.prewarm())
    return env, system


def test_lambda_indexfs_roundtrip(lambda_system):
    env, system = lambda_system
    client = system.new_client()

    def scenario(env):
        ok = yield from client.mknod("/tree/d0/f0")
        row = yield from client.getattr("/tree/d0/f0")
        return ok, row

    ok, row = drive(env, scenario(env))
    assert ok and row == {"path": "/tree/d0/f0"}


def test_lambda_indexfs_cache_hit_on_second_read(lambda_system):
    env, system = lambda_system
    client = system.new_client()

    def scenario(env):
        yield from client.mknod("/tree/d0/f0")
        yield from client.getattr("/tree/d0/f0")
        yield from client.getattr("/tree/d0/f0")

    drive(env, scenario(env))
    hits = [r for r in system.metrics.records if r.cache_hit]
    assert hits  # at least one read came from function memory


def test_lambda_indexfs_coherence_between_instances(lambda_system):
    env, system = lambda_system
    client = system.new_client()

    def scenario(env):
        yield from client.mknod("/tree/d0/f0")
        ok = yield from client.mknod("/tree/d0/f0")
        return ok

    # Duplicate create must be refused even with multiple function
    # instances caching the deployment's partition.
    assert drive(env, scenario(env)) is False


def test_lambda_indexfs_persists_in_leveldb(lambda_system):
    env, system = lambda_system
    client = system.new_client()
    drive(env, client.mknod("/tree/d0/f0"))
    db = system.db_for("/tree/d0/f0")
    rows = drive(env, db.get(("meta", "/tree/d0", "f0")))
    assert rows == {"path": "/tree/d0/f0"}
